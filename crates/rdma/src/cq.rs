//! Posted verbs and completion queues.
//!
//! Real RDMA applications rarely block per verb: they *post* work
//! requests to a queue pair and later *poll* a completion queue.
//! [`PostedQueuePair`] wraps a [`QueuePair`] with exactly that shape —
//! posts return immediately with a work-request id; completions
//! (successes and errors alike) surface on [`CompletionQueue::poll`] in
//! posting order. The simulated transfer still happens eagerly under
//! the hood (the fabric is in-process), so posting N reads and polling
//! once is semantically the batched pull a production Portus daemon
//! would issue.
//!
//! Posts are **doorbell-batched**: all verbs posted between two
//! [`PostedQueuePair::begin_batch`] calls share one doorbell, so the
//! first pays the full per-verb base latency and the rest only the
//! per-WQE increment ([`portus_sim::CostModel::rdma_posted_verb_ns`]).
//! [`PostedQueuePair::post_read_gather`] additionally coalesces up to
//! [`crate::MAX_SGE`] scatter/gather segments into a single WQE.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use portus_sim::SimTime;

use crate::{Completion, QueuePair, RdmaError, RegionTarget, SgEntry};

/// Identifier of one posted work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WrId(pub u64);

/// The outcome of one posted work request.
#[derive(Debug, Clone)]
pub struct WorkCompletion {
    /// The id returned at post time.
    pub wr_id: WrId,
    /// The transfer result: a fabric [`Completion`] or the error that
    /// failed the request.
    pub result: Result<Completion, RdmaError>,
}

impl WorkCompletion {
    /// `true` when the work request succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The fabric-side `(start, end)` instants of a successful
    /// transfer, on the virtual clock. `None` for failed requests.
    ///
    /// Because the in-process fabric completes transfers eagerly at
    /// post time, a drain loop charges no virtual time of its own —
    /// span-based timing of the completion phase is instead derived
    /// from these fabric instants.
    pub fn fabric_span(&self) -> Option<(SimTime, SimTime)> {
        self.result.as_ref().ok().map(|c| (c.start, c.end))
    }
}

/// A completion queue shared between posters and pollers.
#[derive(Debug, Clone, Default)]
pub struct CompletionQueue {
    entries: Arc<Mutex<VecDeque<WorkCompletion>>>,
}

impl CompletionQueue {
    /// Creates an empty completion queue.
    pub fn new() -> CompletionQueue {
        CompletionQueue::default()
    }

    /// Drains up to `max` completions, oldest first.
    pub fn poll(&self, max: usize) -> Vec<WorkCompletion> {
        let mut q = self.entries.lock();
        let n = max.min(q.len());
        q.drain(..n).collect()
    }

    /// Completions currently waiting.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when no completions are waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    fn push(&self, wc: WorkCompletion) {
        self.entries.lock().push_back(wc);
    }
}

/// A queue pair driven by posted work requests.
///
/// # Examples
///
/// ```
/// use portus_mem::{Buffer, MemorySegment};
/// use portus_rdma::{Access, CompletionQueue, Fabric, NodeId, PostedQueuePair,
///                   QueuePair, RegionTarget};
/// use portus_sim::{MemoryKind, SimContext};
///
/// let fabric = Fabric::new(SimContext::icdcs24());
/// let a = fabric.add_nic(NodeId(0));
/// let b = fabric.add_nic(NodeId(1));
/// let src = Buffer::new(MemoryKind::HostDram, MemorySegment::synthetic(4096, 1));
/// let mr = a.register(RegionTarget::Buffer(src), Access::READ);
/// let (_qa, qb) = QueuePair::connect(a, b);
///
/// let cq = CompletionQueue::new();
/// let qp = PostedQueuePair::new(qb, cq.clone());
/// let dst = RegionTarget::Buffer(Buffer::new(
///     MemoryKind::HostDram, MemorySegment::zeroed(4096)));
/// qp.post_read(mr.rkey(), 0, &dst, 0, 4096);
/// let done = cq.poll(16);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].is_ok());
/// ```
#[derive(Debug)]
pub struct PostedQueuePair {
    qp: Arc<QueuePair>,
    cq: CompletionQueue,
    next_wr: Mutex<u64>,
    posted_in_batch: Mutex<u64>,
    deferred: bool,
}

impl PostedQueuePair {
    /// Binds `qp`'s completions to `cq`. A fresh doorbell batch is open:
    /// the first post pays the full per-verb latency, follow-on posts
    /// ride the same doorbell until [`PostedQueuePair::begin_batch`].
    pub fn new(qp: QueuePair, cq: CompletionQueue) -> PostedQueuePair {
        PostedQueuePair::from_shared(Arc::new(qp), cq)
    }

    /// As [`PostedQueuePair::new`], but over a queue pair that is also
    /// used elsewhere (e.g. a daemon's per-client QP shared between
    /// worker threads).
    pub fn from_shared(qp: Arc<QueuePair>, cq: CompletionQueue) -> PostedQueuePair {
        PostedQueuePair {
            qp,
            cq,
            next_wr: Mutex::new(1),
            posted_in_batch: Mutex::new(0),
            deferred: false,
        }
    }

    /// As [`PostedQueuePair::from_shared`], but posts ride the
    /// *deferred* verbs ([`QueuePair::read_gather_deferred`] /
    /// [`QueuePair::write_scatter_deferred`]): WQEs are scheduled on
    /// the QP's lane engines without advancing the shared clock, so
    /// several striped queue pairs can post from one instant and
    /// overlap on independent NIC engines. The driver must advance the
    /// clock itself when it drains the round (to the max completion
    /// `end` it observed).
    pub fn from_shared_deferred(qp: Arc<QueuePair>, cq: CompletionQueue) -> PostedQueuePair {
        PostedQueuePair {
            qp,
            cq,
            next_wr: Mutex::new(1),
            posted_in_batch: Mutex::new(0),
            deferred: true,
        }
    }

    /// Whether this endpoint posts with deferred clock charging.
    pub fn is_deferred(&self) -> bool {
        self.deferred
    }

    fn fresh_wr(&self) -> WrId {
        let mut n = self.next_wr.lock();
        let id = WrId(*n);
        *n += 1;
        id
    }

    /// Rings the doorbell: ends the current batch, so the next post pays
    /// the full per-verb base latency again. Posts between two
    /// `begin_batch` calls share one doorbell and are discounted to
    /// [`portus_sim::CostModel::rdma_posted_verb_ns`] each after the
    /// first (paper §III-D request batching).
    pub fn begin_batch(&self) {
        *self.posted_in_batch.lock() = 0;
    }

    /// Accounts for one post; returns `true` when it opens a new batch.
    fn note_post(&self) -> bool {
        let ctx = self.qp.local_nic().ctx();
        let mut n = self.posted_in_batch.lock();
        let first = *n == 0;
        *n += 1;
        ctx.stats.record_posted_verb();
        if first {
            ctx.stats.record_doorbell_batch();
        }
        first
    }

    /// Posts a one-sided READ; the outcome lands on the completion
    /// queue. Returns the work-request id immediately.
    pub fn post_read(
        &self,
        rkey: u64,
        remote_off: u64,
        dst: &RegionTarget,
        dst_off: u64,
        len: u64,
    ) -> WrId {
        self.post_read_gather(
            &[SgEntry {
                rkey,
                offset: remote_off,
                len,
            }],
            dst,
            dst_off,
        )
    }

    /// Posts a one-sided gather READ over `segs` (one WQE, up to
    /// [`crate::MAX_SGE`] segments, packed into `dst` from `dst_off`);
    /// the outcome lands on the completion queue.
    pub fn post_read_gather(&self, segs: &[SgEntry], dst: &RegionTarget, dst_off: u64) -> WrId {
        let wr_id = self.fresh_wr();
        let first = self.note_post();
        let result = if self.deferred {
            self.qp.read_gather_deferred(segs, dst, dst_off, first)
        } else {
            self.qp.read_gather(segs, dst, dst_off, first)
        };
        if result.is_err() {
            self.qp.local_nic().ctx().stats.record_failed_verb();
        }
        self.cq.push(WorkCompletion { wr_id, result });
        wr_id
    }

    /// Posts a one-sided WRITE; the outcome lands on the completion
    /// queue. Returns the work-request id immediately.
    pub fn post_write(
        &self,
        rkey: u64,
        remote_off: u64,
        src: &RegionTarget,
        src_off: u64,
        len: u64,
    ) -> WrId {
        self.post_write_scatter(
            &[SgEntry {
                rkey,
                offset: remote_off,
                len,
            }],
            src,
            src_off,
        )
    }

    /// Posts a one-sided scatter WRITE over `segs` (one WQE, sourced
    /// back to back from `src` at `src_off`); the outcome lands on the
    /// completion queue.
    pub fn post_write_scatter(&self, segs: &[SgEntry], src: &RegionTarget, src_off: u64) -> WrId {
        let wr_id = self.fresh_wr();
        let first = self.note_post();
        let result = if self.deferred {
            self.qp.write_scatter_deferred(segs, src, src_off, first)
        } else {
            self.qp.write_scatter(segs, src, src_off, first)
        };
        if result.is_err() {
            self.qp.local_nic().ctx().stats.record_failed_verb();
        }
        self.cq.push(WorkCompletion { wr_id, result });
        wr_id
    }

    /// The underlying queue pair (for two-sided messaging).
    pub fn qp(&self) -> &QueuePair {
        &self.qp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, Fabric, NodeId};
    use portus_mem::{Buffer, MemorySegment};
    use portus_sim::{MemoryKind, SimContext};

    fn setup() -> (PostedQueuePair, CompletionQueue, u64, RegionTarget) {
        let fabric = Fabric::new(SimContext::icdcs24());
        let a = fabric.add_nic(NodeId(0));
        let b = fabric.add_nic(NodeId(1));
        let src = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(1 << 20, 3));
        let mr = a.register(RegionTarget::Buffer(src), Access::READ);
        let (_qa, qb) = QueuePair::connect(a, b);
        let cq = CompletionQueue::new();
        let qp = PostedQueuePair::new(qb, cq.clone());
        let dst = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(1 << 20),
        ));
        (qp, cq, mr.rkey(), dst)
    }

    #[test]
    fn completions_arrive_in_posting_order() {
        let (qp, cq, rkey, dst) = setup();
        let ids: Vec<WrId> = (0..5)
            .map(|i| qp.post_read(rkey, i * 1024, &dst, i * 1024, 1024))
            .collect();
        let done = cq.poll(16);
        assert_eq!(done.len(), 5);
        let polled: Vec<WrId> = done.iter().map(|w| w.wr_id).collect();
        assert_eq!(polled, ids);
        assert!(done.iter().all(WorkCompletion::is_ok));
        assert!(cq.is_empty());
    }

    #[test]
    fn poll_respects_the_batch_limit() {
        let (qp, cq, rkey, dst) = setup();
        for _ in 0..4 {
            qp.post_read(rkey, 0, &dst, 0, 4096);
        }
        assert_eq!(cq.poll(3).len(), 3);
        assert_eq!(cq.len(), 1);
        assert_eq!(cq.poll(3).len(), 1);
    }

    #[test]
    fn failed_posts_complete_with_errors() {
        let (qp, cq, _rkey, dst) = setup();
        let id = qp.post_read(0xBAD, 0, &dst, 0, 64);
        let done = cq.poll(1);
        assert_eq!(done[0].wr_id, id);
        assert!(matches!(done[0].result, Err(RdmaError::InvalidRkey(0xBAD))));
    }

    #[test]
    fn doorbell_batches_are_counted_and_discounted() {
        let (qp, cq, rkey, dst) = setup();
        let ctx = qp.qp().local_nic().ctx().clone();
        let before = ctx.stats.snapshot();

        for i in 0..4u64 {
            qp.post_read(rkey, i * 4096, &dst, i * 4096, 4096);
        }
        qp.begin_batch();
        for i in 0..4u64 {
            qp.post_read(rkey, i * 4096, &dst, i * 4096, 4096);
        }
        let d = ctx.stats.snapshot().since(&before);
        assert_eq!(d.posted_verbs, 8);
        assert_eq!(d.doorbell_batches, 2);
        assert_eq!(d.rdma_one_sided_ops, 8, "single-segment posts stay 1:1");

        // Within a batch, follow-on verbs are cheaper than the opener.
        let done = cq.poll(16);
        let first = done[0].result.as_ref().unwrap();
        let second = done[1].result.as_ref().unwrap();
        assert!(second.end - second.start < first.end - first.start);
    }

    #[test]
    fn gather_posts_complete_on_the_cq() {
        let (qp, cq, rkey, dst) = setup();
        let segs = [
            SgEntry {
                rkey,
                offset: 0,
                len: 4096,
            },
            SgEntry {
                rkey,
                offset: 4096,
                len: 4096,
            },
        ];
        let id = qp.post_read_gather(&segs, &dst, 0);
        let done = cq.poll(4);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].wr_id, id);
        assert_eq!(done[0].result.as_ref().unwrap().bytes, 8192);
    }

    #[test]
    fn fabric_span_reports_transfer_instants() {
        let (qp, cq, rkey, dst) = setup();
        qp.post_read(rkey, 0, &dst, 0, 4096);
        let bad = qp.post_read(0xBAD, 0, &dst, 0, 64);
        let done = cq.poll(4);
        let (start, end) = done[0].fabric_span().expect("success has a span");
        assert!(end > start);
        assert_eq!(done[1].wr_id, bad);
        assert!(done[1].fabric_span().is_none());
    }

    #[test]
    fn wr_ids_are_monotone() {
        let (qp, _cq, rkey, dst) = setup();
        let a = qp.post_read(rkey, 0, &dst, 0, 64);
        let b = qp.post_read(rkey, 0, &dst, 0, 64);
        assert!(b > a);
    }
}
