//! Portus Daemon: the user-space storage server.
//!
//! Owns a devdax PMem namespace, maintains the three-level index, and
//! serves client connections. Each accepted connection gets a worker
//! thread (the paper's ThreadPool dispatch) that handles control
//! messages and drives the one-sided RDMA datapath:
//!
//! * checkpoint — the daemon **reads** every tensor out of the client's
//!   GPU memory straight into the slot's TensorData region on PMem,
//!   flushes, checksums, and flips the slot to `Done`;
//! * restore — the daemon **writes** the latest `Done` version back into
//!   freshly registered GPU regions.
//!
//! The remote CPU never participates in the data movement and no kernel
//! boundary is crossed — the structural claim the integration tests
//! assert via the datapath counters.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use portus_pmem::PmemDevice;
use portus_rdma::{ControlChannel, Fabric, Nic, NodeId, QueuePair, RegionTarget};
use portus_sim::{SimContext, SimDuration};

use crate::proto::{ModelSummary, Reply, Request, TensorDesc};
use crate::{Index, MIndex, ModelMap, PortusError, PortusResult};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// ModelTable capacity (max concurrent models/shards).
    pub table_capacity: u32,
    /// AllocTable slots.
    pub alloc_slots: u32,
    /// Verify the stored checksum before serving a restore.
    pub verify_on_restore: bool,
    /// DRAM-fallback mode (paper §IV-a): "upon the absence of PMEM ...
    /// Portus can use DRAM as alternatives". Persistence calls are
    /// skipped; a power failure loses everything, as DRAM would.
    pub dram_fallback: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            table_capacity: 1024,
            alloc_slots: 8192,
            verify_on_restore: true,
            dram_fallback: false,
        }
    }
}

/// The endpoints handed to a connecting client.
#[derive(Debug)]
pub struct ClientEndpoints {
    /// Request channel (client end).
    pub requests: ControlChannel<Request>,
    /// Reply channel (client end).
    pub replies: ControlChannel<Reply>,
    /// The client's queue pair (its NIC is the local end).
    pub qp: QueuePair,
}

pub(crate) struct DaemonState {
    pub(crate) ctx: SimContext,
    pub(crate) index: Index,
    pub(crate) map: Mutex<ModelMap>,
    pub(crate) sessions: Mutex<HashMap<String, Vec<TensorDesc>>>,
    model_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    cfg: DaemonConfig,
}

/// The Portus storage daemon.
///
/// # Examples
///
/// See the crate-level documentation for an end-to-end
/// register → checkpoint → restore walkthrough.
pub struct PortusDaemon {
    state: Arc<DaemonState>,
    nic: Arc<Nic>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for PortusDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortusDaemon")
            .field("node", &self.nic.node())
            .field("models", &self.state.map.lock().len())
            .finish()
    }
}

impl PortusDaemon {
    /// Starts a daemon on `node` over a **freshly formatted** namespace.
    ///
    /// # Errors
    ///
    /// Formatting failures; [`PortusError::Rdma`] if `node` has no NIC.
    pub fn start(
        fabric: &Fabric,
        node: NodeId,
        dev: Arc<PmemDevice>,
        cfg: DaemonConfig,
    ) -> PortusResult<Arc<PortusDaemon>> {
        let index = Index::format(dev, cfg.table_capacity, cfg.alloc_slots)?;
        Self::with_index(fabric, node, index, ModelMap::new(), cfg)
    }

    /// Starts a daemon over an **existing** namespace, rebuilding the
    /// ModelMap from the persistent ModelTable (restart-after-crash).
    ///
    /// # Errors
    ///
    /// Recovery failures (bad superblock, corrupt structures).
    pub fn recover(
        fabric: &Fabric,
        node: NodeId,
        dev: Arc<PmemDevice>,
        cfg: DaemonConfig,
    ) -> PortusResult<Arc<PortusDaemon>> {
        let (index, map) = Index::recover(dev)?;
        Self::with_index(fabric, node, index, map, cfg)
    }

    fn with_index(
        fabric: &Fabric,
        node: NodeId,
        index: Index,
        map: ModelMap,
        cfg: DaemonConfig,
    ) -> PortusResult<Arc<PortusDaemon>> {
        let nic = fabric.nic(node)?;
        Ok(Arc::new(PortusDaemon {
            state: Arc::new(DaemonState {
                ctx: fabric.ctx().clone(),
                index,
                map: Mutex::new(map),
                sessions: Mutex::new(HashMap::new()),
                model_locks: Mutex::new(HashMap::new()),
                cfg,
            }),
            nic,
            workers: Mutex::new(Vec::new()),
        }))
    }

    /// Accepts a connection from `client_nic`: spawns a worker thread
    /// and returns the client's endpoints.
    pub fn accept(&self, client_nic: Arc<Nic>) -> ClientEndpoints {
        let ctx = self.state.ctx.clone();
        let (req_client, req_daemon) = ControlChannel::pair(ctx.clone());
        let (rep_daemon, rep_client) = ControlChannel::pair(ctx);
        let (qp_daemon, qp_client) = QueuePair::connect(Arc::clone(&self.nic), client_nic);
        let state = Arc::clone(&self.state);
        let handle = std::thread::spawn(move || serve(state, qp_daemon, req_daemon, rep_daemon));
        self.workers.lock().push(handle);
        ClientEndpoints {
            requests: req_client,
            replies: rep_client,
            qp: qp_client,
        }
    }

    /// Waits for all worker threads to exit (they exit when their
    /// client disconnects).
    pub fn shutdown(&self) {
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }

    /// Summaries of all stored models (daemon-side view).
    ///
    /// # Errors
    ///
    /// Device errors while reading MIndex records.
    pub fn summaries(&self) -> PortusResult<Vec<ModelSummary>> {
        self.state.list_models()
    }

    /// The persistent index (for the repacker and tooling).
    pub fn index(&self) -> &Index {
        &self.state.index
    }

    /// In-DRAM model map size (diagnostic).
    pub fn model_count(&self) -> usize {
        self.state.map.lock().len()
    }

    /// The daemon's simulation context.
    pub fn ctx(&self) -> &SimContext {
        &self.state.ctx
    }
}

fn serve(
    state: Arc<DaemonState>,
    qp: QueuePair,
    requests: ControlChannel<Request>,
    replies: ControlChannel<Reply>,
) {
    // Exits when the client disconnects (recv error) or says goodbye.
    while let Ok(req) = requests.recv() {
        let reply = match req {
            Request::Disconnect => break,
            Request::Register { req_id, model, tensors } => {
                match state.register(&model, tensors) {
                    Ok(()) => Reply::Registered { req_id, slots: crate::SLOT_COUNT as u8 },
                    Err(e) => Reply::Error { req_id, message: e.to_string() },
                }
            }
            Request::DeltaCheckpoint { req_id, model, dirty } => {
                match state.delta_checkpoint(&qp, &model, &dirty) {
                    Ok((version, pulled_bytes, copied_bytes, elapsed)) => Reply::DeltaDone {
                        req_id,
                        version,
                        pulled_bytes,
                        copied_bytes,
                        elapsed,
                    },
                    Err(e) => Reply::Error { req_id, message: e.to_string() },
                }
            }
            Request::Checkpoint { req_id, model } => match state.checkpoint(&qp, &model) {
                Ok((version, bytes, elapsed)) => Reply::CheckpointDone {
                    req_id,
                    version,
                    bytes,
                    elapsed,
                },
                Err(e) => Reply::Error { req_id, message: e.to_string() },
            },
            Request::Restore { req_id, model, tensors } => {
                match state.restore(&qp, &model, &tensors) {
                    Ok((version, bytes, elapsed)) => Reply::RestoreDone {
                        req_id,
                        version,
                        bytes,
                        elapsed,
                    },
                    Err(e) => Reply::Error { req_id, message: e.to_string() },
                }
            }
            Request::MarkComplete { req_id, model } => match state.mark_complete(&model) {
                Ok(()) => Reply::Completed { req_id },
                Err(e) => Reply::Error { req_id, message: e.to_string() },
            },
            Request::Drop { req_id, model } => match state.drop_model(&model) {
                Ok(()) => Reply::Dropped { req_id },
                Err(e) => Reply::Error { req_id, message: e.to_string() },
            },
            Request::List { req_id } => match state.list_models() {
                Ok(models) => Reply::Models { req_id, models },
                Err(e) => Reply::Error { req_id, message: e.to_string() },
            },
        };
        if replies.send(reply).is_err() {
            break;
        }
    }
}

/// Chunked device-local copy within one PMem namespace (the carry-over
/// path of incremental checkpoints).
fn copy_on_device(
    dev: &PmemDevice,
    src_off: u64,
    dst_off: u64,
    len: u64,
) -> PortusResult<()> {
    let mut buf = vec![0u8; 256 * 1024];
    let mut done = 0u64;
    while done < len {
        let chunk = ((len - done) as usize).min(buf.len());
        dev.read(src_off + done, &mut buf[..chunk])?;
        dev.write(dst_off + done, &buf[..chunk])?;
        done += chunk as u64;
    }
    Ok(())
}

impl DaemonState {
    fn model_lock(&self, model: &str) -> Arc<Mutex<()>> {
        Arc::clone(
            self.model_locks
                .lock()
                .entry(model.to_string())
                .or_default(),
        )
    }

    fn lookup(&self, model: &str) -> PortusResult<MIndex> {
        let off = self
            .map
            .lock()
            .get(model)
            .ok_or_else(|| PortusError::ModelNotFound(model.to_string()))?;
        self.index.load_mindex(off)
    }

    fn persist_data(&self, off: u64, len: u64) -> PortusResult<()> {
        if !self.cfg.dram_fallback {
            self.index.device().persist(off, len)?;
        }
        Ok(())
    }

    pub(crate) fn register(&self, model: &str, tensors: Vec<TensorDesc>) -> PortusResult<()> {
        let metas: Vec<_> = tensors.iter().map(TensorDesc::meta).collect();
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let existing = self.map.lock().get(model);
        match existing {
            Some(off) => {
                // Re-registration (e.g. after client restart): the
                // structure must match the persistent index.
                let mi = self.index.load_mindex(off)?;
                if mi.tensors.len() != metas.len() {
                    return Err(PortusError::StructureMismatch(format!(
                        "{model}: {} registered tensors vs {} on PMem",
                        metas.len(),
                        mi.tensors.len()
                    )));
                }
                for (rec, meta) in mi.tensors.iter().zip(&metas) {
                    if rec.meta != *meta {
                        return Err(PortusError::StructureMismatch(format!(
                            "{model}: tensor {} does not match stored {}",
                            meta.name, rec.meta.name
                        )));
                    }
                }
            }
            None => {
                let mi = self.index.create_model(model, &metas)?;
                self.map.lock().insert(model.to_string(), mi.offset);
            }
        }
        self.sessions.lock().insert(model.to_string(), tensors);
        Ok(())
    }

    pub(crate) fn checkpoint(
        &self,
        qp: &QueuePair,
        model: &str,
    ) -> PortusResult<(u64, u64, SimDuration)> {
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let mut mi = self.lookup(model)?;
        let descs = self
            .sessions
            .lock()
            .get(model)
            .cloned()
            .ok_or_else(|| PortusError::Daemon(format!("no registered session for {model}")))?;
        if descs.len() != mi.tensors.len() {
            return Err(PortusError::StructureMismatch(format!(
                "{model}: session has {} tensors, index has {}",
                descs.len(),
                mi.tensors.len()
            )));
        }

        let target = mi.target_slot();
        let version = mi.latest_done().map_or(0, |(_, s)| s.version) + 1;
        // Re-attach a data region if the repacker reclaimed this slot.
        let hdr = self.index.ensure_slot_region(&mut mi, target)?;
        self.index.mark_slot_active(&mi, target, version)?;

        let t0 = self.ctx.clock.now();
        // The zero-copy pulls: one one-sided READ per tensor, GPU → PMem.
        for (rec, desc) in mi.tensors.iter().zip(&descs) {
            if desc.meta() != rec.meta {
                return Err(PortusError::StructureMismatch(format!(
                    "{model}: registered tensor {} does not match index",
                    desc.name
                )));
            }
            let len = rec.meta.size_bytes();
            let dst = RegionTarget::Pmem {
                dev: Arc::clone(self.index.device()),
                base: hdr.data_off + rec.rel_off,
                len,
            };
            qp.read(desc.rkey, 0, &dst, 0, len)?;
        }
        // RDMA landed in the DDIO domain; make it durable (Wei et al.).
        self.persist_data(hdr.data_off, hdr.data_len.max(1))?;
        let checksum = self.index.slot_checksum(&mi, target)?;
        self.index.mark_slot_done(&mi, target, checksum)?;
        let elapsed = self.ctx.clock.now().saturating_since(t0);
        Ok((version, mi.total_bytes, elapsed))
    }

    /// Incremental checkpoint: dirty tensors are pulled from GPU memory;
    /// clean ones are carried over from the previous complete version
    /// with a device-local PMem copy (charged at DAX read + write rates).
    /// The resulting slot is a *complete* version — crash consistency is
    /// identical to a full checkpoint.
    pub(crate) fn delta_checkpoint(
        &self,
        qp: &QueuePair,
        model: &str,
        dirty: &[bool],
    ) -> PortusResult<(u64, u64, u64, SimDuration)> {
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let mut mi = self.lookup(model)?;
        let descs = self
            .sessions
            .lock()
            .get(model)
            .cloned()
            .ok_or_else(|| PortusError::Daemon(format!("no registered session for {model}")))?;
        if descs.len() != mi.tensors.len() || dirty.len() != mi.tensors.len() {
            return Err(PortusError::StructureMismatch(format!(
                "{model}: session {} / dirty {} tensors vs index {}",
                descs.len(),
                dirty.len(),
                mi.tensors.len()
            )));
        }
        let prev = mi.latest_done();
        let target = mi.target_slot();
        let version = prev.map_or(0, |(_, s)| s.version) + 1;
        let hdr = self.index.ensure_slot_region(&mut mi, target)?;
        self.index.mark_slot_active(&mi, target, version)?;

        let dev = Arc::clone(self.index.device());
        let ctx = &self.ctx;
        let t0 = ctx.clock.now();
        let (mut pulled, mut copied) = (0u64, 0u64);
        for ((rec, desc), &is_dirty) in mi.tensors.iter().zip(&descs).zip(dirty) {
            if desc.meta() != rec.meta {
                return Err(PortusError::StructureMismatch(format!(
                    "{model}: registered tensor {} does not match index",
                    desc.name
                )));
            }
            let len = rec.meta.size_bytes();
            // Without a previous complete version, everything must be
            // pulled regardless of the mask.
            let prev_hdr = prev.map(|(_, h)| h);
            if is_dirty || prev_hdr.is_none() {
                let dst = RegionTarget::Pmem {
                    dev: Arc::clone(&dev),
                    base: hdr.data_off + rec.rel_off,
                    len,
                };
                qp.read(desc.rkey, 0, &dst, 0, len)?;
                pulled += len;
            } else if let Some(prev_hdr) = prev_hdr {
                copy_on_device(&dev, prev_hdr.data_off + rec.rel_off, hdr.data_off + rec.rel_off, len)?;
                let d = ctx.model.dax_read(len) + ctx.model.dax_write(len);
                ctx.charge(d);
                ctx.stats.record_copy(len);
                copied += len;
            }
        }
        self.persist_data(hdr.data_off, hdr.data_len.max(1))?;
        let checksum = self.index.slot_checksum(&mi, target)?;
        self.index.mark_slot_done(&mi, target, checksum)?;
        let elapsed = ctx.clock.now().saturating_since(t0);
        Ok((version, pulled, copied, elapsed))
    }

    pub(crate) fn restore(
        &self,
        qp: &QueuePair,
        model: &str,
        descs: &[TensorDesc],
    ) -> PortusResult<(u64, u64, SimDuration)> {
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let mi = self.lookup(model)?;
        let (slot, hdr) = mi
            .latest_done()
            .ok_or_else(|| PortusError::NoValidCheckpoint(model.to_string()))?;
        if descs.len() != mi.tensors.len() {
            return Err(PortusError::StructureMismatch(format!(
                "{model}: restore registered {} tensors, index has {}",
                descs.len(),
                mi.tensors.len()
            )));
        }
        if self.cfg.verify_on_restore {
            let computed = self.index.slot_checksum(&mi, slot)?;
            if computed != hdr.checksum {
                return Err(PortusError::ChecksumMismatch {
                    model: model.to_string(),
                    version: hdr.version,
                });
            }
        }

        let t0 = self.ctx.clock.now();
        // One-sided WRITEs: PMem → GPU, no client CPU involvement.
        for (rec, desc) in mi.tensors.iter().zip(descs) {
            if desc.meta() != rec.meta {
                return Err(PortusError::StructureMismatch(format!(
                    "{model}: restore tensor {} does not match index",
                    desc.name
                )));
            }
            let len = rec.meta.size_bytes();
            let src = RegionTarget::Pmem {
                dev: Arc::clone(self.index.device()),
                base: hdr.data_off + rec.rel_off,
                len,
            };
            qp.write(desc.rkey, 0, &src, 0, len)?;
        }
        let elapsed = self.ctx.clock.now().saturating_since(t0);
        Ok((hdr.version, mi.total_bytes, elapsed))
    }

    pub(crate) fn mark_complete(&self, model: &str) -> PortusResult<()> {
        let mi = self.lookup(model)?;
        self.index.set_job_complete(&mi)
    }

    pub(crate) fn drop_model(&self, model: &str) -> PortusResult<()> {
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let mi = self.lookup(model)?;
        self.index.remove_model(&mi)?;
        self.map.lock().remove(model);
        self.sessions.lock().remove(model);
        Ok(())
    }

    pub(crate) fn list_models(&self) -> PortusResult<Vec<ModelSummary>> {
        let offsets: Vec<(String, u64)> = self
            .map
            .lock()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let mut out = Vec::with_capacity(offsets.len());
        for (name, off) in offsets {
            let mi = self.index.load_mindex(off)?;
            out.push(ModelSummary {
                name,
                layers: mi.tensors.len() as u32,
                bytes: mi.total_bytes,
                latest_version: mi.latest_done().map(|(_, s)| s.version),
                valid_versions: mi.valid_versions(),
                complete: mi.flags & crate::FLAG_JOB_COMPLETE != 0,
            });
        }
        Ok(out)
    }
}
