//! Portus Daemon: the user-space storage server.
//!
//! Owns a devdax PMem namespace, maintains the three-level index, and
//! serves client connections. Each accepted connection gets a
//! receive-and-dispatch thread; the actual request handling runs on a
//! bounded shared worker pool (the paper's ThreadPool serves
//! *requests*, not connections), so one client's in-flight checkpoint
//! of model A no longer serializes behind its checkpoint of model B.
//! Replies carry the request id and the client demultiplexes them, so
//! out-of-order completion is fine.
//!
//! The datapath itself is **posted**, not blocking: the daemon builds
//! one work-queue entry per run of up to [`portus_rdma::MAX_SGE`]
//! tensors that are contiguous in the slot's TensorData region
//! (`rel_off`-adjacent), posts every WQE of the operation in one
//! doorbell batch through a [`portus_rdma::PostedQueuePair`], then
//! drains the completion queue, mapping any error back to the tensors
//! of its run:
//!
//! * checkpoint — the daemon **reads** every tensor out of the client's
//!   GPU memory straight into the slot's TensorData region on PMem,
//!   flushes, checksums, and flips the slot to `Done`;
//! * restore — the daemon **writes** the latest `Done` version back into
//!   freshly registered GPU regions.
//!
//! The remote CPU never participates in the data movement and no kernel
//! boundary is crossed — the structural claim the integration tests
//! assert via the datapath counters.
//!
//! Datapath errors are recovered per-WQE: failed work requests are
//! re-posted for up to [`DaemonConfig::verb_retries`] rounds (each
//! round charging an exponentially growing backoff to the virtual
//! clock); if any stay failed, the target slot is rolled back to its
//! pre-call header — or collapsed to `Empty` when partial data
//! clobbered a previously complete version — and the client receives a
//! typed [`PortusError::DatapathFailed`] with per-tensor attribution.
//! The model's previous `Done` version is never touched, so restore
//! keeps working after any failed checkpoint.
//!
//! Multi-tenant QoS (see [`crate::qos`]) sits in front of all of this:
//! each connection carries a tenant identity
//! ([`PortusDaemon::accept_as`]), checkpoint traffic passes per-tenant
//! token buckets before it may queue (over budget → typed
//! [`Reply::Throttled`] with a `retry_after` hint), the dispatch pool
//! runs two classes so restores overtake queued checkpoints, and the
//! striped datapath confines concurrent tenants to weighted-fair lane
//! shares.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use portus_pmem::{PmemDevice, PmemError};
use portus_rdma::{
    CompletionQueue, ControlChannel, Fabric, Nic, NodeId, PostedQueuePair, QueuePair, RdmaError,
    RegionTarget, SgEntry, WrId, MAX_SGE,
};
use portus_sim::{Metrics, Resource, SimContext, SimDuration, SimTime, SpanRecord, Stage, TraceOp};

use crate::proto::{ModelSummary, Reply, Request, TensorDesc};
use crate::qos::{QosConfig, QosState, TenantCtx};
use crate::{
    Index, MIndex, ModelMap, PortusError, PortusResult, SlotHeader, SlotState, VerbFailure,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// ModelTable capacity (max concurrent models/shards).
    pub table_capacity: u32,
    /// AllocTable slots.
    pub alloc_slots: u32,
    /// Verify the stored checksum before serving a restore.
    pub verify_on_restore: bool,
    /// DRAM-fallback mode (paper §IV-a): "upon the absence of PMEM ...
    /// Portus can use DRAM as alternatives". Persistence calls are
    /// skipped; a power failure loses everything, as DRAM would.
    pub dram_fallback: bool,
    /// Size of the shared request-dispatch worker pool. Requests from
    /// all connections are handled by this pool, so up to
    /// `dispatch_workers` requests make progress concurrently.
    pub dispatch_workers: usize,
    /// Bound of the dispatch queue's **normal class** (checkpoint
    /// traffic): at most this many requests wait for a worker. Once
    /// full, a further checkpoint dispatch waits up to
    /// [`DaemonConfig::shed_wait`] for space and is then **shed** with
    /// a typed [`Reply::Throttled`] — overload is surfaced to the
    /// client instead of silently blocking the connection thread.
    /// Restores and control-plane requests ride the urgent class and
    /// are never shed. Current depth, high-water mark, and this
    /// capacity are exported as gauges on [`portus_sim::Metrics`].
    pub dispatch_queue_depth: usize,
    /// How many rounds a failed datapath WQE is re-posted before the
    /// operation is declared failed and the target slot rolled back.
    /// Each round charges an exponentially growing backoff to the
    /// virtual clock ([`portus_sim::CostModel::verb_retry_backoff`]).
    /// `0` means a single error is immediately terminal.
    pub verb_retries: u32,
    /// Low free-byte watermark: when free PMem drops below this after a
    /// request, the dispatch worker runs a repack pass *inline* before
    /// picking up more work (synchronous backpressure). `0` disables.
    pub space_low_watermark: u64,
    /// High free-byte watermark: when free PMem drops below this after
    /// a request (but stays above the low watermark), the background
    /// repacker thread is woken to compact concurrently with traffic.
    /// `0` disables background compaction entirely.
    pub space_high_watermark: u64,
    /// Queue pairs opened per client connection (clamped to at least
    /// one). With more than one, each datapath operation **stripes**
    /// its doorbell batch across the pool — every QP is pinned to its
    /// own NIC DMA-engine lane ([`portus_rdma::QueuePair::connect_lane`]),
    /// so runs on different QPs transfer in parallel up to the NICs'
    /// engine counts, and completed runs flow into a pipelined
    /// persist+checksum stage while later WQEs are still in flight.
    /// `1` keeps the classic single-QP datapath, bit-for-bit.
    pub qps_per_connection: usize,
    /// Multi-tenant QoS policy: per-tenant token buckets (admission)
    /// and lane weights (weighted-fair striping). The default is
    /// policy-free — unlimited buckets, equal weights — and leaves the
    /// daemon's behaviour exactly as it was before QoS existed.
    pub qos: QosConfig,
    /// Route restores onto the dispatch pool's **urgent class**: they
    /// bypass the token buckets and jump ahead of every queued
    /// checkpoint, keeping restore latency flat through a checkpoint
    /// storm. Disabled, restores queue behind checkpoints in the
    /// bounded normal class (but are still never shed).
    pub priority_restore: bool,
    /// How long (host wall clock — queueing charges no virtual time) a
    /// checkpoint dispatch may wait for space on a full normal queue
    /// before it is shed with [`Reply::Throttled`]. Generous by
    /// default so a briefly-full queue still backpressures rather than
    /// shedding.
    pub shed_wait: Duration,
    /// The `retry_after` hint carried by a queue-shed
    /// [`Reply::Throttled`] (virtual time; admission sheds compute the
    /// token bucket's exact deficit instead).
    pub shed_retry_after: SimDuration,
    /// Content-addressed deduplication (ROADMAP item 5). `None` (the
    /// default) keeps every checkpoint a plain contiguous region —
    /// bit-for-bit the pre-dedup daemon. `Some` formats (or recovers)
    /// an extent table on the namespace and converts each sealed
    /// checkpoint into an extent map of content-addressed chunks, so
    /// fine-tunes sharing a base model share physical extents.
    pub dedup: Option<crate::DedupConfig>,
    /// Paged on-PMem model catalog with a learned root (ROADMAP item
    /// 3). `None` (the default) keeps name resolution on the unbounded
    /// DRAM [`ModelMap`] mirror — bit-for-bit the pre-catalog daemon.
    /// `Some` formats (or recovers) the catalog on the namespace,
    /// routes every name lookup through it (one bounded page probe
    /// under a clamped DRAM page cache), and leaves the ModelMap
    /// empty, so daemon DRAM stays O(cache) no matter how many models
    /// the namespace holds.
    pub catalog: Option<crate::CatalogConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            table_capacity: 1024,
            alloc_slots: 8192,
            verify_on_restore: true,
            dram_fallback: false,
            dispatch_workers: 4,
            dispatch_queue_depth: 64,
            verb_retries: 3,
            space_low_watermark: 0,
            space_high_watermark: 0,
            qps_per_connection: 1,
            qos: QosConfig::default(),
            priority_restore: true,
            shed_wait: Duration::from_millis(500),
            shed_retry_after: SimDuration::from_millis(1),
            dedup: None,
            catalog: None,
        }
    }
}

/// A unit of work handed to the dispatch pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Which of the dispatch pool's two classes a job rides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobClass {
    /// Restores (when [`DaemonConfig::priority_restore`] is on) and all
    /// control-plane requests: unbounded, drained before any normal
    /// job, never shed.
    Urgent,
    /// Checkpoint traffic (and restores with priority disabled):
    /// bounded by [`DaemonConfig::dispatch_queue_depth`].
    Normal,
}

/// What became of a dispatched job. The shed and closed variants hand
/// the job back so the caller can reply `Throttled` or run it inline.
enum DispatchOutcome {
    /// Queued; a worker will run it.
    Queued,
    /// The normal queue stayed full past the shed wait.
    Shed(Job),
    /// The pool is draining (shutdown raced a late request).
    Closed(Job),
}

/// The two-class dispatch queue, guarded by one mutex.
struct QueueInner {
    urgent: VecDeque<Job>,
    normal: VecDeque<Job>,
    capacity: usize,
    closed: bool,
}

/// Bounded worker pool executing per-request jobs for all connections.
///
/// Two classes share the pool: an **urgent** queue (restores and
/// control plane — unbounded, drained first, never shed) and a
/// **normal** queue (checkpoints) holding at most `queue_depth` waiting
/// jobs. A full normal queue backpressures the dispatching connection
/// thread for a bounded wait, then **sheds** the job back to the caller
/// ([`DispatchOutcome::Shed`]) so overload turns into a typed
/// [`Reply::Throttled`] instead of an indefinitely blocked connection.
/// Queue depth and its high-water mark are exported as gauges on the
/// shared [`Metrics`].
struct Dispatcher {
    // std sync primitives here, not parking_lot: the producers need
    // condvar waits (with timeout) that the workspace's parking_lot
    // build does not provide.
    inner: StdMutex<QueueInner>,
    /// Signalled when a job is queued (workers wait on it).
    jobs_ready: StdCondvar,
    /// Signalled when a normal job is drained (producers wait on it).
    space_ready: StdCondvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Metrics,
}

impl Dispatcher {
    fn new(workers: usize, queue_depth: usize, metrics: Metrics) -> Arc<Dispatcher> {
        let depth = queue_depth.max(1);
        metrics.set_queue_capacity(depth as u64);
        let dispatcher = Arc::new(Dispatcher {
            inner: StdMutex::new(QueueInner {
                urgent: VecDeque::new(),
                normal: VecDeque::new(),
                capacity: depth,
                closed: false,
            }),
            jobs_ready: StdCondvar::new(),
            space_ready: StdCondvar::new(),
            handles: Mutex::new(Vec::new()),
            metrics,
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let d = Arc::clone(&dispatcher);
                std::thread::spawn(move || d.worker_loop())
            })
            .collect();
        *dispatcher.handles.lock() = handles;
        dispatcher
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.lock_queue();
                loop {
                    // Urgent first — a queued restore overtakes every
                    // waiting checkpoint.
                    if let Some(job) = q.urgent.pop_front() {
                        break Some(job);
                    }
                    if let Some(job) = q.normal.pop_front() {
                        self.space_ready.notify_one();
                        break Some(job);
                    }
                    if q.closed {
                        break None;
                    }
                    q = self
                        .jobs_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match job {
                Some(job) => {
                    self.metrics.queue_exit();
                    job();
                }
                None => return,
            }
        }
    }

    /// Queues `job` on its class. Normal-class jobs wait for space on a
    /// full queue: up to `shed_wait` host-clock time when given (then
    /// [`DispatchOutcome::Shed`]), indefinitely when `None` (restores
    /// demoted to the normal class must never be shed). Queueing
    /// charges no virtual time either way.
    fn dispatch(&self, job: Job, class: JobClass, shed_wait: Option<Duration>) -> DispatchOutcome {
        let mut q = self.lock_queue();
        if class == JobClass::Normal {
            match shed_wait {
                Some(wait) => {
                    let deadline = Instant::now() + wait;
                    while q.normal.len() >= q.capacity && !q.closed {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return DispatchOutcome::Shed(job);
                        }
                        q = self
                            .space_ready
                            .wait_timeout(q, remaining)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                }
                None => {
                    while q.normal.len() >= q.capacity && !q.closed {
                        q = self
                            .space_ready
                            .wait(q)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
        if q.closed {
            return DispatchOutcome::Closed(job);
        }
        match class {
            JobClass::Urgent => q.urgent.push_back(job),
            JobClass::Normal => q.normal.push_back(job),
        }
        self.metrics.queue_enter();
        self.jobs_ready.notify_one();
        DispatchOutcome::Queued
    }

    fn shutdown(&self) {
        {
            let mut q = self.lock_queue();
            q.closed = true;
        }
        // Workers drain whatever is already queued, then exit; blocked
        // producers wake and fall back to inline execution.
        self.jobs_ready.notify_all();
        self.space_ready.notify_all();
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// The endpoints handed to a connecting client.
#[derive(Debug)]
pub struct ClientEndpoints {
    /// Request channel (client end).
    pub requests: ControlChannel<Request>,
    /// Reply channel (client end).
    pub replies: ControlChannel<Reply>,
    /// The client's queue pair (its NIC is the local end).
    pub qp: QueuePair,
    /// Client ends of the extra striped queue pairs (lanes `1..N` when
    /// [`DaemonConfig::qps_per_connection`] is above one). The client
    /// never initiates verbs on them — the daemon's one-sided datapath
    /// does — but dropping an end disconnects the pair, so the client
    /// keeps them alive for the life of the connection.
    pub extra_qps: Vec<QueuePair>,
}

/// The daemon-side queue pairs of one connection: one lane-pinned QP
/// per configured stripe. A pool of one is the classic datapath.
pub(crate) struct QpPool {
    qps: Vec<Arc<QueuePair>>,
}

impl QpPool {
    fn len(&self) -> usize {
        self.qps.len()
    }

    /// The lane-0 QP — the only one a single-QP connection has.
    fn primary(&self) -> &Arc<QueuePair> {
        &self.qps[0]
    }
}

pub(crate) struct DaemonState {
    pub(crate) ctx: SimContext,
    pub(crate) index: Index,
    pub(crate) map: Mutex<ModelMap>,
    pub(crate) sessions: Mutex<HashMap<String, Vec<TensorDesc>>>,
    model_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    pub(crate) cfg: DaemonConfig,
    /// Admission buckets and the lane arbiter (built from `cfg.qos`).
    qos: QosState,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    /// The recovery-epoch gate for `Active`-slot reclaim: the
    /// `(mindex_offset, slot, version)` keys of every slot that was
    /// already `Active` when this daemon instance recovered its index.
    /// Those are crash debris — no thread of *this* process can be
    /// mid-pull into them — so an aggressive repack pass may reclaim
    /// them. An `Active` slot not in this set belongs to a live (or
    /// live-ish) checkpoint and is never touched, regardless of what
    /// the caller asked for.
    pub(crate) stale_active: Mutex<HashSet<(u64, usize, u64)>>,
    /// Monotonic repack-pass counter (span `req_id`s for
    /// [`TraceOp::Repack`]).
    repack_seq: AtomicU64,
    /// Wake-up channel of the background repacker thread (present only
    /// when `space_high_watermark > 0`); dropped on shutdown so the
    /// thread exits.
    repack_tx: Mutex<Option<Sender<()>>>,
}

/// The Portus storage daemon.
///
/// # Examples
///
/// See the crate-level documentation for an end-to-end
/// register → checkpoint → restore walkthrough.
pub struct PortusDaemon {
    state: Arc<DaemonState>,
    nic: Arc<Nic>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    dispatcher: Arc<Dispatcher>,
    repacker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for PortusDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortusDaemon")
            .field("node", &self.nic.node())
            .field("models", &self.model_count())
            .finish()
    }
}

impl PortusDaemon {
    /// Starts a daemon on `node` over a **freshly formatted** namespace.
    ///
    /// # Errors
    ///
    /// Formatting failures; [`PortusError::Rdma`] if `node` has no NIC.
    pub fn start(
        fabric: &Fabric,
        node: NodeId,
        dev: Arc<PmemDevice>,
        cfg: DaemonConfig,
    ) -> PortusResult<Arc<PortusDaemon>> {
        let index = Index::format(dev, cfg.table_capacity, cfg.alloc_slots)?;
        Self::with_index(fabric, node, index, ModelMap::new(), cfg)
    }

    /// Starts a daemon over an **existing** namespace, rebuilding the
    /// ModelMap from the persistent ModelTable (restart-after-crash).
    ///
    /// # Errors
    ///
    /// Recovery failures (bad superblock, corrupt structures).
    pub fn recover(
        fabric: &Fabric,
        node: NodeId,
        dev: Arc<PmemDevice>,
        cfg: DaemonConfig,
    ) -> PortusResult<Arc<PortusDaemon>> {
        let (index, map) = Index::recover(dev)?;
        Self::with_index(fabric, node, index, map, cfg)
    }

    fn with_index(
        fabric: &Fabric,
        node: NodeId,
        index: Index,
        map: ModelMap,
        cfg: DaemonConfig,
    ) -> PortusResult<Arc<PortusDaemon>> {
        let nic = fabric.nic(node)?;
        // Dedup-configured daemons need the extent table on the
        // namespace before any request lands: format one on a fresh
        // device, recover the existing one after a restart.
        if let Some(d) = &cfg.dedup {
            index.enable_dedup(d.max_extents)?;
        }
        let dispatcher = Dispatcher::new(
            cfg.dispatch_workers,
            cfg.dispatch_queue_depth,
            fabric.ctx().metrics.clone(),
        );
        // The recovery epoch: any slot already `Active` at daemon start
        // is crash debris from a previous incarnation — no thread of
        // this process can be pulling into it. Only these slots are
        // eligible for aggressive (`reclaim_active`) repacking.
        let mut stale_active = HashSet::new();
        for (_name, off) in map.iter() {
            let mi = index.load_mindex(off)?;
            for (s, hdr) in mi.slots.iter().enumerate() {
                if hdr.state == SlotState::Active {
                    stale_active.insert((mi.offset, s, hdr.version));
                }
            }
        }
        // Catalog-configured daemons resolve names on PMem: mount (or
        // format) the paged catalog, seed it from the recovered map if
        // the namespace predates it, then drop the DRAM mirror — the
        // whole point is that daemon DRAM no longer scales with the
        // model population. `stale_active` was already computed from
        // the map above, so crash debris is still fenced.
        let map = if let Some(c) = &cfg.catalog {
            index.enable_catalog(c)?;
            let cat = index.catalog().expect("enable_catalog mounts the catalog");
            if cat.is_empty() && !map.is_empty() {
                let live: Vec<(String, u64)> =
                    map.iter().map(|(k, v)| (k.to_string(), v)).collect();
                cat.bulk_replace(index.allocator(), &live)?;
            }
            ModelMap::new()
        } else {
            map
        };
        let high_watermark = cfg.space_high_watermark;
        let qos = QosState::new(cfg.qos.clone());
        let state = Arc::new(DaemonState {
            ctx: fabric.ctx().clone(),
            index,
            map: Mutex::new(map),
            sessions: Mutex::new(HashMap::new()),
            model_locks: Mutex::new(HashMap::new()),
            cfg,
            qos,
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            stale_active: Mutex::new(stale_active),
            repack_seq: AtomicU64::new(0),
            repack_tx: Mutex::new(None),
        });
        state.refresh_space_gauges();
        let repacker = if high_watermark > 0 {
            // A `bounded(1)` wake-up channel: while a pass runs, at most
            // one further wake-up is parked; extra triggers coalesce.
            let (tx, rx) = bounded::<()>(1);
            *state.repack_tx.lock() = Some(tx);
            let st = Arc::clone(&state);
            Some(std::thread::spawn(move || {
                while rx.recv().is_ok() {
                    let _ = crate::repack::repack_pass(&st, false, Some(high_watermark));
                }
            }))
        } else {
            None
        };
        Ok(Arc::new(PortusDaemon {
            state,
            nic,
            workers: Mutex::new(Vec::new()),
            dispatcher,
            repacker: Mutex::new(repacker),
        }))
    }

    /// Accepts a connection from `client_nic`: spawns a
    /// receive-and-dispatch thread and returns the client's endpoints.
    /// Request handling itself runs on the shared dispatch pool.
    /// [`DaemonConfig::qps_per_connection`] queue pairs are opened, one
    /// per DMA-engine lane; datapath operations stripe across them.
    ///
    /// The connection is attributed to the `"default"` tenant; use
    /// [`PortusDaemon::accept_as`] to name one.
    pub fn accept(&self, client_nic: Arc<Nic>) -> ClientEndpoints {
        self.accept_as(client_nic, "default")
    }

    /// [`PortusDaemon::accept`] with an explicit tenant identity: every
    /// request on the connection is charged to `tenant`'s token buckets
    /// ([`crate::TenantQos`] via [`DaemonConfig::qos`]), confined to its
    /// weighted-fair share of the striped QP lanes, and attributed to
    /// its per-tenant metrics breakdown.
    pub fn accept_as(&self, client_nic: Arc<Nic>, tenant: &str) -> ClientEndpoints {
        let ctx = self.state.ctx.clone();
        let (req_client, req_daemon) = ControlChannel::pair(ctx.clone());
        let (rep_daemon, rep_client) = ControlChannel::pair(ctx);
        let lanes = self.state.cfg.qps_per_connection.max(1);
        let mut daemon_qps = Vec::with_capacity(lanes);
        let mut client_qps = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let (qp_daemon, qp_client) =
                QueuePair::connect_lane(Arc::clone(&self.nic), Arc::clone(&client_nic), lane);
            daemon_qps.push(Arc::new(qp_daemon));
            client_qps.push(qp_client);
        }
        let pool = Arc::new(QpPool { qps: daemon_qps });
        let state = Arc::clone(&self.state);
        let dispatcher = Arc::clone(&self.dispatcher);
        let tenant = self.state.qos.tenant_ctx(tenant);
        let handle = std::thread::spawn(move || {
            serve(state, dispatcher, pool, tenant, req_daemon, rep_daemon)
        });
        self.workers.lock().push(handle);
        let qp_client = client_qps.remove(0);
        ClientEndpoints {
            requests: req_client,
            replies: rep_client,
            qp: qp_client,
            extra_qps: client_qps,
        }
    }

    /// Waits for all connection threads to exit (they exit when their
    /// client disconnects), then drains and joins the dispatch pool and
    /// the background repacker.
    pub fn shutdown(&self) {
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
        self.dispatcher.shutdown();
        // Dropping the sender ends the repacker's recv loop.
        *self.state.repack_tx.lock() = None;
        if let Some(handle) = self.repacker.lock().take() {
            let _ = handle.join();
        }
    }

    /// High-water mark of requests in flight on the dispatch pool
    /// (diagnostic; lets tests assert that requests actually overlap).
    pub fn peak_in_flight(&self) -> u64 {
        self.state.peak_in_flight.load(Ordering::Relaxed)
    }

    /// Summaries of all stored models (daemon-side view).
    ///
    /// # Errors
    ///
    /// Device errors while reading MIndex records.
    pub fn summaries(&self) -> PortusResult<Vec<ModelSummary>> {
        self.state.list_models()
    }

    /// The persistent index (for the repacker and tooling).
    pub fn index(&self) -> &Index {
        &self.state.index
    }

    /// Stored-model count (diagnostic): the catalog's entry count when
    /// one owns name resolution, the in-DRAM ModelMap size otherwise.
    pub fn model_count(&self) -> usize {
        match self.state.catalog() {
            Some(cat) => cat.len() as usize,
            None => self.state.map.lock().len(),
        }
    }

    /// The daemon's simulation context.
    pub fn ctx(&self) -> &SimContext {
        &self.state.ctx
    }

    /// The shared daemon state (for the repacker).
    pub(crate) fn state(&self) -> &Arc<DaemonState> {
        &self.state
    }
}

/// Records one request's stage timings into the shared tracer (a full
/// span, when enabled) and metrics histograms. All instants come off
/// the virtual clock — never the host wall clock — so deterministic
/// runs record identical spans.
struct SpanCtx<'a> {
    ctx: &'a SimContext,
    req_id: u64,
    op: TraceOp,
    /// The model name for span records — captured only while the tracer
    /// is recording, so the disabled-tracer fast path never allocates.
    model: Option<String>,
}

impl<'a> SpanCtx<'a> {
    fn new(ctx: &'a SimContext, req_id: u64, op: TraceOp, model: &str) -> SpanCtx<'a> {
        let model = ctx.tracer.is_enabled().then(|| model.to_string());
        SpanCtx {
            ctx,
            req_id,
            op,
            model,
        }
    }

    fn record(&self, stage: Stage, start: SimTime, end: SimTime, round: u32) {
        self.record_lane(stage, start, end, round, 0);
    }

    fn record_lane(&self, stage: Stage, start: SimTime, end: SimTime, round: u32, lane: u32) {
        self.ctx
            .metrics
            .record_stage(self.op, stage, end.saturating_since(start));
        if let Some(model) = &self.model {
            self.ctx.tracer.record(SpanRecord {
                req_id: self.req_id,
                op: self.op,
                stage,
                model: model.clone(),
                start,
                end,
                round,
                lane,
            });
        }
    }

    /// Records `stage` from `start` to the current virtual instant.
    fn record_now(&self, stage: Stage, start: SimTime) {
        self.record(stage, start, self.ctx.clock.now(), 0);
    }
}

/// Span identity of a datapath request: `(req_id, op, model)` for the
/// three traced operations, `None` for control-plane requests.
fn span_meta(req: &Request) -> Option<(u64, TraceOp, String)> {
    match req {
        Request::Checkpoint { req_id, model } => {
            Some((*req_id, TraceOp::Checkpoint, model.clone()))
        }
        Request::DeltaCheckpoint { req_id, model, .. } => {
            Some((*req_id, TraceOp::DeltaCheckpoint, model.clone()))
        }
        Request::Restore { req_id, model, .. } => Some((*req_id, TraceOp::Restore, model.clone())),
        _ => None,
    }
}

/// Checkpoint payload bytes `req` will pull, for admission accounting
/// (`None` for anything that is not checkpoint traffic). A model with
/// no registered session costs 0 — the handler rejects it with the
/// proper error, and charging nothing keeps the shed path honest. A
/// delta's cost is its dirty-masked byte sum (the carry-over bytes
/// never cross the fabric; a first delta with no previous version pulls
/// everything, but the mask is the client's own declared intent).
fn checkpoint_cost(state: &DaemonState, req: &Request) -> Option<u64> {
    match req {
        Request::Checkpoint { model, .. } => Some(session_bytes(state, model, None)),
        Request::DeltaCheckpoint { model, dirty, .. } => {
            Some(session_bytes(state, model, Some(dirty)))
        }
        _ => None,
    }
}

fn session_bytes(state: &DaemonState, model: &str, dirty: Option<&[bool]>) -> u64 {
    let sessions = state.sessions.lock();
    let Some(descs) = sessions.get(model) else {
        return 0;
    };
    match dirty {
        None => descs.iter().map(TensorDesc::size_bytes).sum(),
        Some(mask) => descs
            .iter()
            .zip(mask)
            .filter(|&(_, &is_dirty)| is_dirty)
            .map(|(d, _)| d.size_bytes())
            .sum(),
    }
}

fn serve(
    state: Arc<DaemonState>,
    dispatcher: Arc<Dispatcher>,
    pool: Arc<QpPool>,
    tenant: TenantCtx,
    requests: ControlChannel<Request>,
    replies: ControlChannel<Reply>,
) {
    let replies = Arc::new(replies);
    // Exits when the client disconnects (recv error) or says goodbye.
    // Each request becomes one pool job; replies are sent as each job
    // finishes, in completion order — the client demultiplexes by
    // req_id.
    while let Ok(req) = requests.recv() {
        if matches!(req, Request::Disconnect) {
            break;
        }
        let metrics = &state.ctx.metrics;
        // Token-bucket admission: checkpoint traffic only. Restores are
        // latency-critical recovery traffic and bypass the buckets; the
        // control plane is too cheap to meter.
        if let Some(bytes) = checkpoint_cost(&state, &req) {
            let now = state.ctx.clock.now();
            if let Err(wait) = state.qos.admit(&tenant, bytes, now) {
                metrics.tenant_throttled(&tenant.name);
                let _ = replies.send(Reply::Throttled {
                    req_id: req.req_id().unwrap_or(0),
                    retry_after_ns: wait.as_nanos(),
                });
                continue;
            }
            metrics.tenant_admitted(&tenant.name, bytes);
        } else if let Request::Restore { tensors, .. } = &req {
            let bytes = tensors.iter().map(TensorDesc::size_bytes).sum();
            metrics.tenant_admitted(&tenant.name, bytes);
        }
        let is_checkpoint = matches!(
            req,
            Request::Checkpoint { .. } | Request::DeltaCheckpoint { .. }
        );
        let class = match &req {
            Request::Checkpoint { .. } | Request::DeltaCheckpoint { .. } => JobClass::Normal,
            Request::Restore { .. } if !state.cfg.priority_restore => JobClass::Normal,
            _ => JobClass::Urgent,
        };
        let req_id = req.req_id().unwrap_or(0);
        let meta = span_meta(&req);
        let enqueued = state.ctx.clock.now();
        let job: Job = Box::new({
            let state = Arc::clone(&state);
            let pool = Arc::clone(&pool);
            let replies = Arc::clone(&replies);
            let tenant = tenant.clone();
            move || {
                let n = state.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                state.peak_in_flight.fetch_max(n, Ordering::Relaxed);
                // Virtual time that passed between enqueue and pickup is
                // the dispatch-queue wait (zero for an idle pool: queueing
                // itself charges no virtual time).
                let op = meta.as_ref().map(|(_, op, _)| *op);
                if let Some((req_id, op, model)) = &meta {
                    let sc = SpanCtx::new(&state.ctx, *req_id, *op, model);
                    sc.record_now(Stage::DispatchWait, enqueued);
                }
                let reply = handle_request(&state, &pool, &tenant, req);
                state.in_flight.fetch_sub(1, Ordering::Relaxed);
                // Per-tenant end-to-end latency (dispatch wait included
                // — exactly what a tenant experiences).
                if let Some(op) = op {
                    state.ctx.metrics.record_tenant_op(
                        &tenant.name,
                        op,
                        state.ctx.clock.now().saturating_since(enqueued),
                    );
                }
                // The client may already be gone; nothing to do then.
                let _ = replies.send(reply);
                // Watermark check after the reply is on the wire: a request
                // that dipped free space below a watermark triggers
                // compaction (inline below low, background below high)
                // without adding latency to its own reply.
                state.maybe_trigger_repack();
            }
        });
        // Checkpoints shed after the bounded wait; a restore demoted to
        // the normal class (priority disabled) waits forever — restores
        // are never shed.
        let shed_wait = is_checkpoint.then_some(state.cfg.shed_wait);
        match dispatcher.dispatch(job, class, shed_wait) {
            DispatchOutcome::Queued => {}
            DispatchOutcome::Shed(job) => {
                drop(job);
                state.ctx.metrics.tenant_shed(&tenant.name);
                let _ = replies.send(Reply::Throttled {
                    req_id,
                    retry_after_ns: state.cfg.shed_retry_after.as_nanos(),
                });
            }
            // The pool is draining (shutdown raced a late request); run
            // the job inline so the client still gets its reply.
            DispatchOutcome::Closed(job) => job(),
        }
    }
}

/// Maps a handler error onto the wire. Datapath failures keep their
/// structure (model, op, per-WQE tensor attribution and retry counts)
/// so the client can rebuild the typed
/// [`PortusError::DatapathFailed`]; everything else is rendered into
/// [`Reply::Error`].
fn error_reply(req_id: u64, e: PortusError) -> Reply {
    match e {
        PortusError::DatapathFailed {
            model,
            op,
            failures,
        } => Reply::DatapathFailed {
            req_id,
            model,
            op,
            failures,
        },
        PortusError::OutOfSpace {
            needed,
            free,
            largest_extent,
        } => Reply::OutOfSpace {
            req_id,
            needed,
            free,
            largest_extent,
        },
        PortusError::CatalogFull { capacity } => Reply::CatalogFull { req_id, capacity },
        other => Reply::Error {
            req_id,
            message: other.to_string(),
        },
    }
}

/// Executes one request against the daemon state and builds its reply.
fn handle_request(state: &DaemonState, pool: &QpPool, tenant: &TenantCtx, req: Request) -> Reply {
    match req {
        // The connection thread consumes Disconnect; answer defensively
        // if one is ever routed here.
        Request::Disconnect => Reply::Error {
            req_id: 0,
            message: "disconnect is handled by the connection thread".to_string(),
        },
        Request::Register {
            req_id,
            model,
            tensors,
        } => match state.register(&model, tensors) {
            Ok(()) => Reply::Registered {
                req_id,
                slots: crate::SLOT_COUNT as u8,
            },
            Err(e) => error_reply(req_id, e),
        },
        Request::DeltaCheckpoint {
            req_id,
            model,
            dirty,
        } => match state.delta_checkpoint(pool, tenant, &model, &dirty, req_id) {
            Ok((version, pulled_bytes, copied_bytes, elapsed)) => Reply::DeltaDone {
                req_id,
                version,
                pulled_bytes,
                copied_bytes,
                elapsed,
            },
            Err(e) => error_reply(req_id, e),
        },
        Request::Checkpoint { req_id, model } => {
            match state.checkpoint(pool, tenant, &model, req_id) {
                Ok((version, bytes, elapsed)) => Reply::CheckpointDone {
                    req_id,
                    version,
                    bytes,
                    elapsed,
                },
                Err(e) => error_reply(req_id, e),
            }
        }
        Request::Restore {
            req_id,
            model,
            tensors,
            version,
        } => match state.restore(pool, tenant, &model, &tensors, version, req_id) {
            Ok((version, bytes, elapsed)) => Reply::RestoreDone {
                req_id,
                version,
                bytes,
                elapsed,
            },
            Err(e) => error_reply(req_id, e),
        },
        Request::MarkComplete { req_id, model } => match state.mark_complete(&model) {
            Ok(()) => Reply::Completed { req_id },
            Err(e) => error_reply(req_id, e),
        },
        Request::Drop { req_id, model } => match state.drop_model(&model) {
            Ok(()) => Reply::Dropped { req_id },
            Err(e) => error_reply(req_id, e),
        },
        Request::List { req_id } => match state.list_models() {
            Ok(models) => Reply::Models { req_id, models },
            Err(e) => error_reply(req_id, e),
        },
        Request::Stats { req_id } => {
            // Space gauges are refreshed lazily; a stats query must
            // report the allocator's current view, not the last
            // repack's.
            state.refresh_space_gauges();
            Reply::Stats {
                req_id,
                metrics: Box::new(state.ctx.metrics.snapshot()),
            }
        }
    }
}

/// One tensor's contribution to a posted datapath operation.
struct TensorVerb {
    rel_off: u64,
    len: u64,
    rkey: u64,
    name: String,
}

/// One work-queue entry: a run of tensors contiguous in the slot's
/// TensorData region, moved by a single gather/scatter verb.
struct VerbRun {
    segs: Vec<SgEntry>,
    names: Vec<String>,
    base_rel: u64,
    len: u64,
}

/// Groups tensors into runs that are contiguous by `rel_off` in the
/// slot's TensorData region, capped at [`MAX_SGE`] segments per run.
/// Each run becomes one WQE; a gap in the selected tensors (e.g. clean
/// tensors skipped by a delta checkpoint) breaks the run.
fn coalesce_runs(verbs: &[TensorVerb]) -> Vec<VerbRun> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < verbs.len() {
        let base = verbs[i].rel_off;
        let mut expected = base;
        let mut segs = Vec::new();
        let mut names = Vec::new();
        while i < verbs.len() && segs.len() < MAX_SGE && verbs[i].rel_off == expected {
            segs.push(SgEntry {
                rkey: verbs[i].rkey,
                offset: 0,
                len: verbs[i].len,
            });
            names.push(verbs[i].name.clone());
            expected += verbs[i].len;
            i += 1;
        }
        runs.push(VerbRun {
            segs,
            names,
            base_rel: base,
            len: expected - base,
        });
    }
    runs
}

/// Where a delta checkpoint's carry-over reads its bytes from.
#[derive(Debug, Clone, Copy)]
enum CarrySrc {
    /// Absolute device offset within the previous version's plain
    /// contiguous region.
    Plain(u64),
    /// The previous version is extent-mapped: its map's offset. The
    /// carry decompresses/copies the touched chunks out of the store.
    Extents(u64),
}

/// Which way a posted datapath operation moves bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Gather-READ, GPU → PMem (checkpoint pull).
    Pull,
    /// Scatter-WRITE, PMem → GPU (restore push).
    Push,
}

/// A datapath operation whose WQEs exhausted their retries.
struct DatapathFailure {
    /// The terminally failed work requests, with tensor attribution.
    failures: Vec<VerbFailure>,
    /// Whether any WQE of the operation completed — i.e. whether bytes
    /// landed in the target region before the operation was declared
    /// failed. Decides revert-vs-collapse on rollback.
    any_succeeded: bool,
}

impl DatapathFailure {
    fn into_error(self, model: &str, op: &str) -> PortusError {
        PortusError::DatapathFailed {
            model: model.to_string(),
            op: op.to_string(),
            failures: self.failures,
        }
    }
}

/// What a successful posted operation leaves behind: each run's fabric
/// `(start, end)` completion window, indexed like the input runs. Only
/// the striped datapath fills this in (the single-QP path seals with
/// the classic full-region pass and needs no per-run times).
struct RunOutcome {
    completions: Vec<Option<(SimTime, SimTime)>>,
}

/// One extent of a striped checkpoint whose bytes are already in the
/// slot's data region, queued for the pipelined persist+checksum stage.
struct SealPiece {
    /// Slot-relative offset of the extent.
    rel_off: u64,
    /// Extent length in bytes.
    len: u64,
    /// Virtual instant the bytes were in place: the fabric completion
    /// end for pulled runs, the copy completion for carry-overs.
    arrival: SimTime,
    /// Digest already computed from in-flight bytes (carry-overs hash
    /// the bounce buffer they stage through); `None` means the stage
    /// reads the extent back from PMem, charging the DAX read.
    digest: Option<u64>,
}

/// Drains **every** posted completion off `cq` and returns the run
/// indices that failed, with their errors, the fabric-side
/// `(earliest start, latest end)` envelope over the successful
/// transfers, and each successful run's own `(start, end)` window. One
/// bad WQE no longer masks the outcome of the others — the retry loop
/// needs the full failed set, and a terminal error must attribute
/// every failed run. The per-run windows feed the striped seal stage,
/// which starts persisting an extent the instant its transfer
/// completed. The envelope times the completion phase: the drain
/// itself charges no virtual time (the in-process fabric completes
/// eagerly at post), so the transfers' own instants are the honest
/// span.
#[allow(clippy::type_complexity)]
fn drain_cq(
    cq: &CompletionQueue,
    posted: &[(WrId, usize)],
) -> (
    Vec<(usize, RdmaError)>,
    Option<(SimTime, SimTime)>,
    Vec<(usize, SimTime, SimTime)>,
) {
    let mut failed = Vec::new();
    let mut span: Option<(SimTime, SimTime)> = None;
    let mut succeeded = Vec::new();
    let mut polled = 0;
    while polled < posted.len() {
        let batch = cq.poll(posted.len() - polled);
        if batch.is_empty() {
            // Defensive: the in-process fabric completes eagerly, so
            // every post already has a completion. Bail rather than
            // spin if that invariant ever breaks.
            break;
        }
        for wc in &batch {
            let run = posted
                .iter()
                .find(|(id, _)| *id == wc.wr_id)
                .map(|&(_, r)| r);
            match &wc.result {
                Err(e) => {
                    if let Some(run) = run {
                        failed.push((run, e.clone()));
                    }
                }
                Ok(_) => {
                    if let Some((start, end)) = wc.fabric_span() {
                        if let Some(run) = run {
                            succeeded.push((run, start, end));
                        }
                        span = Some(match span {
                            Some((s, e)) => (s.min(start), e.max(end)),
                            None => (start, end),
                        });
                    }
                }
            }
        }
        polled += batch.len();
    }
    (failed, span, succeeded)
}

/// Chunked device-local copy within one PMem namespace (the carry-over
/// path of incremental checkpoints). Returns the positional digest of
/// the copied bytes keyed at slot-relative `rel_off` — computed from
/// the bounce buffer the copy already staged through, so a striped
/// seal gets the extent's digest without a second read pass.
fn copy_on_device(
    dev: &PmemDevice,
    src_off: u64,
    dst_off: u64,
    len: u64,
    rel_off: u64,
) -> PortusResult<u64> {
    crate::index::with_io_buf(|buf| {
        let mut done = 0u64;
        let mut digest = 0u64;
        while done < len {
            let chunk = ((len - done) as usize).min(buf.len());
            dev.read(src_off + done, &mut buf[..chunk])?;
            dev.write(dst_off + done, &buf[..chunk])?;
            digest =
                crate::combine_digests(digest, crate::region_digest(&buf[..chunk], rel_off + done));
            done += chunk as u64;
        }
        Ok(digest)
    })
}

impl DaemonState {
    pub(crate) fn model_lock(&self, model: &str) -> Arc<Mutex<()>> {
        Arc::clone(
            self.model_locks
                .lock()
                .entry(model.to_string())
                .or_default(),
        )
    }

    /// The next repack-pass id (span `req_id`s for [`TraceOp::Repack`]).
    pub(crate) fn next_repack_id(&self) -> u64 {
        self.repack_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Pushes the allocator's current free/used/largest-extent view
    /// into the shared metrics gauges, and the extent store's dedup
    /// gauges when one is mounted.
    pub(crate) fn refresh_space_gauges(&self) {
        let alloc = self.index.allocator();
        self.ctx.metrics.set_space(
            alloc.free_bytes(),
            alloc.used_bytes(),
            alloc.largest_free_extent(),
        );
        if let Some(store) = self.index.extent_store() {
            let Ok(s) = store.stats() else { return };
            self.ctx.metrics.set_dedup(
                s.live,
                s.shared,
                s.compressed,
                s.referenced_logical,
                s.stored_bytes,
            );
        }
        self.ctx
            .metrics
            .set_model_map_bytes(self.map.lock().approx_bytes());
        if let Some(cat) = self.catalog() {
            let s = cat.stats();
            self.ctx.metrics.set_catalog(
                s.pages,
                s.entries,
                s.cache_hits,
                s.cache_misses,
                s.cache_bytes,
            );
        }
    }

    /// Post-seal dedup conversion: chunks the freshly sealed plain
    /// region into content-addressed extents, publishes the extent map
    /// under an atomic header flip, and frees the staging region. The
    /// checkpoint is already durable when this runs, so failure is
    /// non-fatal — the slot simply keeps its plain region and only the
    /// space win is lost. Charges the DAX traffic the conversion
    /// performs (chunk read-back, new-extent writes, the map write).
    fn ingest_phase(
        &self,
        mi: &mut MIndex,
        slot: usize,
        dcfg: &crate::DedupConfig,
        sc: &SpanCtx<'_>,
    ) {
        let t0 = self.ctx.clock.now();
        match crate::dedup::ingest_slot(&self.index, mi, slot, dcfg) {
            Ok(report) => {
                self.ctx.charge(
                    self.ctx.model.dax_read(report.read_bytes)
                        + self
                            .ctx
                            .model
                            .dax_write(report.new_bytes + report.map_bytes),
                );
                self.ctx
                    .metrics
                    .record_dedup_ingest(report.chunks as u64, report.shared_chunks as u64);
                sc.record_now(Stage::Dedup, t0);
            }
            Err(_) => self.ctx.metrics.record_dedup_ingest_failure(),
        }
    }

    /// Watermark-driven compaction hook, run by dispatch workers after
    /// each reply. Below the low watermark the pass runs inline
    /// (synchronous backpressure: this worker reclaims before taking
    /// more work); between the watermarks the background repacker is
    /// woken. Disabled watermarks (`0`) cost one atomic-free field read.
    fn maybe_trigger_repack(&self) {
        let high = self.cfg.space_high_watermark;
        if high == 0 {
            return;
        }
        let free = self.index.allocator().free_bytes();
        if free >= high {
            return;
        }
        if self.cfg.space_low_watermark > 0 && free < self.cfg.space_low_watermark {
            let _ = crate::repack::repack_pass(self, true, Some(high));
        } else if let Some(tx) = self.repack_tx.lock().as_ref() {
            // A parked wake-up already covers us; drop extras.
            let _ = tx.try_send(());
        }
    }

    /// [`Index::ensure_slot_region`] with the `OutOfSpace` recovery
    /// loop: on an allocator `OutOfSpace`, run one aggressive (but
    /// epoch-gated, so still safe) repack pass and retry the allocation
    /// once. If the device genuinely cannot hold the region, surface
    /// the typed [`PortusError::OutOfSpace`] carrying the allocator's
    /// final view. The caller holds this model's lock; the pass
    /// `try_lock`s and simply skips the busy model.
    fn ensure_region_or_reclaim(&self, mi: &mut MIndex, slot: usize) -> PortusResult<SlotHeader> {
        match self.index.ensure_slot_region(mi, slot) {
            Err(PortusError::Pmem(PmemError::OutOfSpace { .. })) => {
                let _ = crate::repack::repack_pass(self, true, None);
                match self.index.ensure_slot_region(mi, slot) {
                    Ok(hdr) => {
                        self.ctx.stats.record_oos_recovery();
                        Ok(hdr)
                    }
                    Err(PortusError::Pmem(PmemError::OutOfSpace { requested, .. })) => {
                        let alloc = self.index.allocator();
                        Err(PortusError::OutOfSpace {
                            needed: requested,
                            free: alloc.free_bytes(),
                            largest_extent: alloc.largest_free_extent(),
                        })
                    }
                    other => other,
                }
            }
            other => other,
        }
    }

    /// The mounted catalog, when this daemon is configured to use it.
    /// A recovered namespace may carry a catalog the operator chose not
    /// to enable; the config gate keeps such a daemon byte-for-byte on
    /// the ModelMap path.
    pub(crate) fn catalog(&self) -> Option<&crate::Catalog> {
        if self.cfg.catalog.is_some() {
            self.index.catalog()
        } else {
            None
        }
    }

    /// Resolves a model name to its MIndex offset through whichever
    /// structure owns name resolution: the paged on-PMem catalog when
    /// enabled, the DRAM ModelMap mirror otherwise.
    pub(crate) fn resolve_model(&self, model: &str) -> PortusResult<Option<u64>> {
        match self.catalog() {
            Some(cat) => cat.lookup(model),
            None => Ok(self.map.lock().get(model)),
        }
    }

    /// [`DaemonState::resolve_model`] + MIndex load. Datapath callers
    /// pass their span so catalog-enabled daemons attribute the paged
    /// probe to [`Stage::CatalogLookup`]; the ModelMap path records
    /// nothing (a DRAM tree walk charges no virtual time).
    fn lookup(&self, model: &str, sc: Option<&SpanCtx<'_>>) -> PortusResult<MIndex> {
        let off = if let Some(cat) = self.catalog() {
            let t0 = self.ctx.clock.now();
            let off = cat.lookup(model)?;
            if let Some(sc) = sc {
                sc.record_now(Stage::CatalogLookup, t0);
            }
            off
        } else {
            self.map.lock().get(model)
        }
        .ok_or_else(|| PortusError::ModelNotFound(model.to_string()))?;
        self.index.load_mindex(off)
    }

    fn persist_data(&self, off: u64, len: u64) -> PortusResult<()> {
        if !self.cfg.dram_fallback {
            self.index.device().persist(off, len)?;
        }
        Ok(())
    }

    /// Persists pulled data, recording the phase time on the stats and
    /// a `Persist` span on `sc`.
    fn persist_phase(&self, off: u64, len: u64, sc: &SpanCtx<'_>) -> PortusResult<()> {
        let t0 = self.ctx.clock.now();
        self.persist_data(off, len)?;
        self.ctx
            .stats
            .record_persist_ns(self.ctx.clock.now().saturating_since(t0).as_nanos());
        sc.record_now(Stage::Persist, t0);
        Ok(())
    }

    /// Checksums a slot, charging the DAX read of the slot's bytes and
    /// recording the phase time on the stats and a `Checksum` span on
    /// `sc`.
    fn checksum_phase(&self, mi: &MIndex, slot: usize, sc: &SpanCtx<'_>) -> PortusResult<u64> {
        let t0 = self.ctx.clock.now();
        let sum = self.index.slot_checksum(mi, slot)?;
        self.ctx.charge(self.ctx.model.dax_read(mi.total_bytes));
        self.ctx
            .stats
            .record_checksum_ns(self.ctx.clock.now().saturating_since(t0).as_nanos());
        sc.record_now(Stage::Checksum, t0);
        Ok(sum)
    }

    /// [`DaemonState::checksum_phase`] for digest-sealed slots
    /// ([`crate::CKSUM_KIND_DIGEST`]): recomputes the positional digest
    /// of the region at the same DAX read charge.
    fn digest_phase(&self, mi: &MIndex, slot: usize, sc: &SpanCtx<'_>) -> PortusResult<u64> {
        let t0 = self.ctx.clock.now();
        let digest = self.index.slot_digest(mi, slot)?;
        self.ctx.charge(self.ctx.model.dax_read(mi.total_bytes));
        self.ctx
            .stats
            .record_checksum_ns(self.ctx.clock.now().saturating_since(t0).as_nanos());
        sc.record_now(Stage::Checksum, t0);
        Ok(digest)
    }

    /// Verifies a `Done` slot before serving a restore, dispatching on
    /// how the sealing write path validated it: digest-sealed slots
    /// (striped checkpoints) recompute the positional digest; FNV
    /// slots (classic checkpoints, and any header written before the
    /// striped datapath existed) recompute the sequential checksum.
    /// Both paths charge the same full-region DAX read.
    fn verify_slot(
        &self,
        mi: &MIndex,
        slot: usize,
        hdr: &SlotHeader,
        model: &str,
        sc: &SpanCtx<'_>,
    ) -> PortusResult<()> {
        let ok = if hdr.cksum_kind == crate::CKSUM_KIND_DIGEST {
            self.digest_phase(mi, slot, sc)? == hdr.digest
        } else {
            self.checksum_phase(mi, slot, sc)? == hdr.checksum
        };
        if !ok {
            return Err(PortusError::ChecksumMismatch {
                model: model.to_string(),
                version: hdr.version,
            });
        }
        Ok(())
    }

    /// Posts one WQE per run (gather-READs for [`Direction::Pull`],
    /// scatter-WRITEs for [`Direction::Push`], with the PMem side at
    /// `data_off`), drains the completion queue(s), and re-posts failed
    /// WQEs for up to [`DaemonConfig::verb_retries`] rounds. Each round
    /// charges an exponentially growing backoff to the virtual clock
    /// before the fresh doorbell batch. Runs that stay failed after the
    /// last round come back as a [`DatapathFailure`] with per-run
    /// tensor attribution and retry counts.
    ///
    /// A single-QP pool posts everything in one doorbell batch on the
    /// classic eager path — bit-for-bit the pre-striping datapath. With
    /// more QPs, runs are sharded largest-first across the pool's
    /// lane-pinned QPs and posted deferred, so transfers overlap on
    /// independent NIC engines and each run's completion window comes
    /// back in [`RunOutcome`] for the pipelined seal.
    fn execute_runs(
        &self,
        pool: &QpPool,
        tenant: &TenantCtx,
        runs: &[VerbRun],
        data_off: u64,
        dir: Direction,
        sc: &SpanCtx<'_>,
    ) -> Result<RunOutcome, DatapathFailure> {
        if runs.is_empty() {
            return Ok(RunOutcome {
                completions: Vec::new(),
            });
        }
        if pool.len() > 1 {
            return self.execute_runs_striped(pool, tenant, runs, data_off, dir, sc);
        }
        self.execute_runs_single(pool.primary(), runs, data_off, dir, sc)
    }

    /// The classic single-QP datapath: one eager doorbell batch, one
    /// completion queue, whole-batch retry rounds.
    fn execute_runs_single(
        &self,
        qp: &Arc<QueuePair>,
        runs: &[VerbRun],
        data_off: u64,
        dir: Direction,
        sc: &SpanCtx<'_>,
    ) -> Result<RunOutcome, DatapathFailure> {
        let cq = CompletionQueue::new();
        let pqp = PostedQueuePair::from_shared(Arc::clone(qp), cq.clone());
        let post = |run: &VerbRun| -> WrId {
            let region = RegionTarget::Pmem {
                dev: Arc::clone(self.index.device()),
                base: data_off + run.base_rel,
                len: run.len,
            };
            match dir {
                Direction::Pull => pqp.post_read_gather(&run.segs, &region, 0),
                Direction::Push => pqp.post_write_scatter(&run.segs, &region, 0),
            }
        };

        let t_post = self.ctx.clock.now();
        pqp.begin_batch();
        let posted: Vec<(WrId, usize)> = runs
            .iter()
            .enumerate()
            .map(|(i, run)| (post(run), i))
            .collect();
        sc.record(Stage::DoorbellPost, t_post, self.ctx.clock.now(), 0);
        let (mut failed, drain_span, _) = drain_cq(&cq, &posted);
        if let Some((s, e)) = drain_span {
            sc.record(Stage::CqDrain, s, e, 0);
        }
        let mut any_succeeded = failed.len() < runs.len();
        let mut retries = vec![0u32; runs.len()];
        let mut round = 0u32;
        while !failed.is_empty() && round < self.cfg.verb_retries {
            round += 1;
            let t_backoff = self.ctx.clock.now();
            self.ctx.charge(self.ctx.model.verb_retry_backoff(round));
            sc.record(Stage::RetryBackoff, t_backoff, self.ctx.clock.now(), round);
            let t_post = self.ctx.clock.now();
            pqp.begin_batch();
            let reposted: Vec<(WrId, usize)> = failed
                .iter()
                .map(|&(i, _)| {
                    retries[i] += 1;
                    self.ctx.stats.record_retried_verb();
                    (post(&runs[i]), i)
                })
                .collect();
            sc.record(Stage::DoorbellPost, t_post, self.ctx.clock.now(), round);
            let (still_failed, drain_span, _) = drain_cq(&cq, &reposted);
            if let Some((s, e)) = drain_span {
                sc.record(Stage::CqDrain, s, e, round);
            }
            if still_failed.len() < failed.len() {
                any_succeeded = true;
            }
            failed = still_failed;
        }
        if failed.is_empty() {
            return Ok(RunOutcome {
                completions: Vec::new(),
            });
        }
        Err(DatapathFailure {
            failures: failed
                .into_iter()
                .map(|(i, e)| VerbFailure {
                    tensors: runs[i].names.clone(),
                    retries: retries[i],
                    error: e.to_string(),
                })
                .collect(),
            any_succeeded,
        })
    }

    /// The striped datapath: runs are sharded **largest-first onto the
    /// least-loaded lane** (deterministic: ties break on run index and
    /// lane number) and posted *deferred* on each lane's own
    /// [`PostedQueuePair`], so one posting instant fans out across the
    /// NICs' DMA engines and equal-size shards finish together instead
    /// of serializing. Every lane gets its own doorbell/drain spans
    /// (tagged with the lane), and the shared clock advances once per
    /// round, to the slowest lane's last completion.
    ///
    /// Retries keep **lane affinity**: a failed run is re-posted on the
    /// QP it originally rode — its connection state, not a random
    /// stripe, is what the retry exercises — while the other lanes'
    /// completed runs are never touched again.
    ///
    /// Lane selection is **weighted-fair**: the tenant may only stripe
    /// across the lanes its [`crate::qos::LaneArbiter`] share allows
    /// right now. A lone tenant is allowed every lane, which keeps the
    /// pre-QoS sharding bit-for-bit; concurrent tenants are confined to
    /// their weighted quota and steered toward the lanes they have
    /// charged the least.
    fn execute_runs_striped(
        &self,
        pool: &QpPool,
        tenant: &TenantCtx,
        runs: &[VerbRun],
        data_off: u64,
        dir: Direction,
        sc: &SpanCtx<'_>,
    ) -> Result<RunOutcome, DatapathFailure> {
        let lanes = pool.len();
        let allowed = self.qos.arbiter.allowed_lanes(tenant, lanes);
        let mut order: Vec<usize> = (0..runs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(runs[i].len), i));
        let mut lane_bytes = vec![0u64; lanes];
        let mut lane_of = vec![0usize; runs.len()];
        for &i in &order {
            let lane = allowed
                .iter()
                .copied()
                .min_by_key(|&l| (lane_bytes[l], l))
                .expect("allowed lane set is non-empty");
            lane_of[i] = lane;
            lane_bytes[lane] += runs[i].len;
            self.qos.arbiter.charge(tenant, lane, runs[i].len);
        }
        let endpoints: Vec<(PostedQueuePair, CompletionQueue)> = pool
            .qps
            .iter()
            .map(|qp| {
                let cq = CompletionQueue::new();
                let pqp = PostedQueuePair::from_shared_deferred(Arc::clone(qp), cq.clone());
                (pqp, cq)
            })
            .collect();
        let post = |lane: usize, run: &VerbRun| -> WrId {
            let region = RegionTarget::Pmem {
                dev: Arc::clone(self.index.device()),
                base: data_off + run.base_rel,
                len: run.len,
            };
            match dir {
                Direction::Pull => endpoints[lane].0.post_read_gather(&run.segs, &region, 0),
                Direction::Push => endpoints[lane].0.post_write_scatter(&run.segs, &region, 0),
            }
        };

        let mut completions: Vec<Option<(SimTime, SimTime)>> = vec![None; runs.len()];
        let mut retries = vec![0u32; runs.len()];
        let mut any_succeeded = false;
        let mut pending: Vec<usize> = (0..runs.len()).collect();
        let mut round = 0u32;
        loop {
            let t_post = self.ctx.clock.now();
            let mut posted: Vec<Vec<(WrId, usize)>> = vec![Vec::new(); lanes];
            for lane in 0..lanes {
                let mine: Vec<usize> = pending
                    .iter()
                    .copied()
                    .filter(|&i| lane_of[i] == lane)
                    .collect();
                if mine.is_empty() {
                    continue;
                }
                endpoints[lane].0.begin_batch();
                for i in mine {
                    posted[lane].push((post(lane, &runs[i]), i));
                }
            }
            let mut failed: Vec<(usize, RdmaError)> = Vec::new();
            let mut round_end: Option<SimTime> = None;
            for lane in 0..lanes {
                if posted[lane].is_empty() {
                    continue;
                }
                let (lane_failed, envelope, succeeded) =
                    drain_cq(&endpoints[lane].1, &posted[lane]);
                // Doorbell ring → the lane's first byte is the queueing
                // window; the envelope is the lane's drain. A lane whose
                // every WQE failed still rang its doorbell (zero-width).
                let first = envelope.map_or(t_post, |(s, _)| s);
                sc.record_lane(Stage::DoorbellPost, t_post, first, round, lane as u32);
                if let Some((s, e)) = envelope {
                    sc.record_lane(Stage::CqDrain, s, e, round, lane as u32);
                    round_end = Some(round_end.map_or(e, |r| r.max(e)));
                }
                for (i, s, e) in succeeded {
                    completions[i] = Some((s, e));
                    any_succeeded = true;
                }
                failed.extend(lane_failed);
            }
            // Deferred posts left the clock at the doorbell instant; the
            // round is over when its slowest lane drains.
            if let Some(e) = round_end {
                self.ctx.clock.advance_to(e);
            }
            if failed.is_empty() {
                return Ok(RunOutcome { completions });
            }
            failed.sort_by_key(|&(i, _)| i);
            if round >= self.cfg.verb_retries {
                return Err(DatapathFailure {
                    failures: failed
                        .into_iter()
                        .map(|(i, e)| VerbFailure {
                            tensors: runs[i].names.clone(),
                            retries: retries[i],
                            error: e.to_string(),
                        })
                        .collect(),
                    any_succeeded,
                });
            }
            round += 1;
            let t_backoff = self.ctx.clock.now();
            self.ctx.charge(self.ctx.model.verb_retry_backoff(round));
            sc.record(Stage::RetryBackoff, t_backoff, self.ctx.clock.now(), round);
            pending = failed
                .into_iter()
                .map(|(i, _)| {
                    retries[i] += 1;
                    self.ctx.stats.record_retried_verb();
                    i
                })
                .collect();
        }
    }

    /// Rolls the target slot back after a failed checkpoint, so a
    /// datapath error never strands the slot `Active`. When bytes
    /// landed in a previously-`Done` slot, the old data is clobbered
    /// and its checksum would falsely validate — the slot collapses to
    /// `Empty`; otherwise the exact pre-call header is restored.
    /// `latest_done` and restore are untouched either way.
    fn rollback_slot(
        &self,
        mi: &MIndex,
        slot: usize,
        pre: SlotHeader,
        data_landed: bool,
    ) -> PortusResult<()> {
        if data_landed && pre.state == SlotState::Done {
            self.index.collapse_slot(mi, slot)?;
        } else {
            self.index.revert_slot(mi, slot, &pre)?;
        }
        self.ctx.stats.record_rolled_back_slot();
        Ok(())
    }

    /// [`Self::rollback_slot`], best-effort: a rollback that itself
    /// fails must never mask the datapath error the caller is about to
    /// return — it is only counted. (The slot is then stranded `Active`
    /// until the next recovery epoch reclaims it.)
    fn rollback_best_effort(&self, mi: &MIndex, slot: usize, pre: SlotHeader, data_landed: bool) {
        if self.rollback_slot(mi, slot, pre, data_landed).is_err() {
            self.ctx.stats.record_rollback_failure();
            self.ctx.metrics.record_rollback_failure();
        }
    }

    /// Persists the pulled data, checksums the slot, and flips it to
    /// `Done`. On any error the slot is rolled back (bytes definitely
    /// landed by this point) and the original error is returned. An
    /// empty data region skips the persist phase entirely — no span,
    /// no counter — instead of flushing a phantom byte.
    fn seal_slot(
        &self,
        mi: &MIndex,
        slot: usize,
        hdr: SlotHeader,
        pre: SlotHeader,
        sc: &SpanCtx<'_>,
    ) -> PortusResult<()> {
        let persisted = if hdr.data_len == 0 {
            Ok(())
        } else {
            self.persist_phase(hdr.data_off, hdr.data_len, sc)
        };
        let sealed = persisted
            .and_then(|()| self.checksum_phase(mi, slot, sc))
            .and_then(|checksum| {
                let t0 = self.ctx.clock.now();
                let done = self.index.mark_slot_done(mi, slot, checksum);
                sc.record_now(Stage::HeaderFlip, t0);
                done
            });
        if let Err(e) = sealed {
            // Best-effort: the original error is what the client sees.
            self.rollback_best_effort(mi, slot, pre, true);
            return Err(e);
        }
        Ok(())
    }

    /// The striped seal: instead of one full-region persist pass plus a
    /// second full read for the checksum, each extent rides a FIFO
    /// persist+digest pipeline **as its transfer completes** — work for
    /// early runs overlaps, in virtual time, with later runs still in
    /// flight on the NIC engines. Per-extent digests
    /// ([`crate::region_digest`]) combine order-independently into the
    /// slot digest the header is sealed with
    /// ([`Index::mark_slot_done_digest`]); restore recomputes the same
    /// value from the region regardless of how the extents were
    /// partitioned. On any error the slot is rolled back exactly as in
    /// [`DaemonState::seal_slot`].
    fn seal_slot_pipelined(
        &self,
        mi: &MIndex,
        slot: usize,
        hdr: SlotHeader,
        pre: SlotHeader,
        pieces: Vec<SealPiece>,
        sc: &SpanCtx<'_>,
    ) -> PortusResult<()> {
        if let Err(e) = self.seal_pipeline(mi, slot, hdr, pieces, sc) {
            self.rollback_best_effort(mi, slot, pre, true);
            return Err(e);
        }
        Ok(())
    }

    fn seal_pipeline(
        &self,
        mi: &MIndex,
        slot: usize,
        hdr: SlotHeader,
        mut pieces: Vec<SealPiece>,
        sc: &SpanCtx<'_>,
    ) -> PortusResult<()> {
        let ctx = &self.ctx;
        // The stage's own FIFO: extents enter in arrival order, so an
        // extent whose transfer finished first is durable first.
        let pipe = Resource::new("seal-pipe");
        pieces.sort_by_key(|p| (p.arrival, p.rel_off));
        let fabric_end = pieces
            .iter()
            .map(|p| p.arrival)
            .max()
            .unwrap_or_else(|| ctx.clock.now());
        let dev = self.index.device();
        let mut digest = 0u64;
        let mut buf = Vec::new();
        // Overlap accounting for the pipeline gauge: stage work granted
        // before the last fabric completion ran in the transfer's
        // shadow.
        let mut stage_busy = SimDuration::ZERO;
        let mut stage_overlapped = SimDuration::ZERO;
        let mut track = |start: SimTime, end: SimTime, service: SimDuration| {
            stage_busy += service;
            stage_overlapped += end.min(fabric_end).saturating_since(start.min(fabric_end));
        };
        for piece in &pieces {
            if piece.len > 0 && !self.cfg.dram_fallback {
                let cost = dev.persist_deferred(hdr.data_off + piece.rel_off, piece.len)?;
                let g = pipe.schedule(piece.arrival, cost);
                ctx.stats.record_persist_ns(cost.as_nanos());
                sc.record(Stage::Persist, g.start, g.end, 0);
                track(g.start, g.end, cost);
            }
            let d = match piece.digest {
                Some(d) => d,
                None => {
                    buf.resize(piece.len as usize, 0);
                    dev.read(hdr.data_off + piece.rel_off, &mut buf)?;
                    let cost = ctx.model.dax_read(piece.len);
                    let g = pipe.schedule(piece.arrival, cost);
                    ctx.stats.record_checksum_ns(cost.as_nanos());
                    sc.record(Stage::Checksum, g.start, g.end, 0);
                    track(g.start, g.end, cost);
                    crate::region_digest(&buf, piece.rel_off)
                }
            };
            digest = crate::combine_digests(digest, d);
        }
        // The request completes when the pipeline drains (advance_to is
        // monotonic, so an already-later clock is left alone).
        ctx.clock.advance_to(pipe.busy_until());
        ctx.metrics
            .set_pipeline_overlap(stage_overlapped, stage_busy);
        let t0 = ctx.clock.now();
        let done = self.index.mark_slot_done_digest(mi, slot, digest);
        sc.record_now(Stage::HeaderFlip, t0);
        done
    }

    pub(crate) fn register(&self, model: &str, tensors: Vec<TensorDesc>) -> PortusResult<()> {
        let metas: Vec<_> = tensors.iter().map(TensorDesc::meta).collect();
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let existing = self.resolve_model(model)?;
        match existing {
            Some(off) => {
                // Re-registration (e.g. after client restart): the
                // structure must match the persistent index.
                let mi = self.index.load_mindex(off)?;
                if mi.tensors.len() != metas.len() {
                    return Err(PortusError::StructureMismatch(format!(
                        "{model}: {} registered tensors vs {} on PMem",
                        metas.len(),
                        mi.tensors.len()
                    )));
                }
                for (rec, meta) in mi.tensors.iter().zip(&metas) {
                    if rec.meta != *meta {
                        return Err(PortusError::StructureMismatch(format!(
                            "{model}: tensor {} does not match stored {}",
                            meta.name, rec.meta.name
                        )));
                    }
                }
            }
            None => {
                let mi = self.index.create_model(model, &metas)?;
                match self.catalog() {
                    Some(cat) => {
                        cat.insert(self.index.allocator(), model, mi.offset)?;
                    }
                    None => {
                        self.map.lock().insert(model.to_string(), mi.offset);
                    }
                }
            }
        }
        self.sessions.lock().insert(model.to_string(), tensors);
        Ok(())
    }

    pub(crate) fn checkpoint(
        &self,
        pool: &QpPool,
        tenant: &TenantCtx,
        model: &str,
        req_id: u64,
    ) -> PortusResult<(u64, u64, SimDuration)> {
        let sc = SpanCtx::new(&self.ctx, req_id, TraceOp::Checkpoint, model);
        let _active = self.qos.arbiter.op_guard(tenant);
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let t_op = self.ctx.clock.now();
        let mut mi = self.lookup(model, Some(&sc))?;
        let descs = self
            .sessions
            .lock()
            .get(model)
            .cloned()
            .ok_or_else(|| PortusError::Daemon(format!("no registered session for {model}")))?;
        if descs.len() != mi.tensors.len() {
            return Err(PortusError::StructureMismatch(format!(
                "{model}: session has {} tensors, index has {}",
                descs.len(),
                mi.tensors.len()
            )));
        }

        // Validate the whole session against the index before the
        // target slot is touched — a rejected request must leave both
        // slot headers exactly as they were, and a failed WQE must mean
        // a fabric problem, not a structure mismatch discovered halfway
        // through the pull.
        let mut verbs = Vec::with_capacity(mi.tensors.len());
        for (rec, desc) in mi.tensors.iter().zip(&descs) {
            if desc.meta() != rec.meta {
                return Err(PortusError::StructureMismatch(format!(
                    "{model}: registered tensor {} does not match index",
                    desc.name
                )));
            }
            verbs.push(TensorVerb {
                rel_off: rec.rel_off,
                len: rec.meta.size_bytes(),
                rkey: desc.rkey,
                name: desc.name.clone(),
            });
        }
        sc.record_now(Stage::Validate, t_op);

        let t_build = self.ctx.clock.now();
        let runs = coalesce_runs(&verbs);
        sc.record_now(Stage::WqeBuild, t_build);

        let target = mi.target_slot();
        // On a dedup namespace the target slot may hold the older
        // version as an extent map; drop those references *before* the
        // slot is activated, so the rollback target (`pre`) never
        // carries an extent map and a failed pull cannot strand one.
        if mi.slots[target].ext_map != 0 {
            crate::dedup::release_slot_extents(&self.index, &mut mi, target)?;
        }
        // Max over *both* headers, not `latest_done`: a collapsed or
        // reverted slot keeps its issued version as a high-water mark,
        // so a number handed to a failed checkpoint is never reused.
        let version = mi.next_version();
        // Re-attach a data region if the repacker reclaimed this slot.
        // The returned header doubles as the rollback target: captured
        // after region attachment (a fresh region is kept on failure)
        // but before activation.
        let hdr = self.ensure_region_or_reclaim(&mut mi, target)?;
        self.index.mark_slot_active(&mi, target, version)?;

        let t0 = self.ctx.clock.now();
        // The zero-copy pulls, GPU → PMem: coalesced gather WQEs posted
        // under one doorbell per QP stripe, completions drained off the
        // CQs, failed WQEs retried per-run on their own lane.
        let outcome =
            match self.execute_runs(pool, tenant, &runs, hdr.data_off, Direction::Pull, &sc) {
                Ok(outcome) => outcome,
                Err(fail) => {
                    self.rollback_best_effort(&mi, target, hdr, fail.any_succeeded);
                    return Err(fail.into_error(model, "checkpoint"));
                }
            };
        // RDMA landed in the DDIO domain; make it durable (Wei et al.),
        // checksum, and flip to Done. The striped datapath pipelines
        // per-run persist+digest work against the transfers themselves.
        if pool.len() > 1 {
            let now = self.ctx.clock.now();
            let pieces = runs
                .iter()
                .zip(&outcome.completions)
                .map(|(run, c)| SealPiece {
                    rel_off: run.base_rel,
                    len: run.len,
                    arrival: c.map_or(now, |(_, end)| end),
                    digest: None,
                })
                .collect();
            self.seal_slot_pipelined(&mi, target, hdr, hdr, pieces, &sc)?;
        } else {
            self.seal_slot(&mi, target, hdr, hdr, &sc)?;
        }
        // Dedup tier: the sealed plain region becomes an extent map of
        // content-addressed chunks (failure keeps the plain region).
        if let Some(dcfg) = &self.cfg.dedup {
            mi.slots[target].state = SlotState::Done;
            mi.slots[target].version = version;
            self.ingest_phase(&mut mi, target, dcfg, &sc);
        }
        let elapsed = self.ctx.clock.now().saturating_since(t0);
        sc.record_now(Stage::Total, t_op);
        Ok((version, mi.total_bytes, elapsed))
    }

    /// Incremental checkpoint: dirty tensors are pulled from GPU memory;
    /// clean ones are carried over from the previous complete version
    /// with a device-local PMem copy (charged at DAX read + write rates).
    /// The resulting slot is a *complete* version — crash consistency is
    /// identical to a full checkpoint.
    pub(crate) fn delta_checkpoint(
        &self,
        pool: &QpPool,
        tenant: &TenantCtx,
        model: &str,
        dirty: &[bool],
        req_id: u64,
    ) -> PortusResult<(u64, u64, u64, SimDuration)> {
        let sc = SpanCtx::new(&self.ctx, req_id, TraceOp::DeltaCheckpoint, model);
        let _active = self.qos.arbiter.op_guard(tenant);
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let t_op = self.ctx.clock.now();
        let mut mi = self.lookup(model, Some(&sc))?;
        let descs = self
            .sessions
            .lock()
            .get(model)
            .cloned()
            .ok_or_else(|| PortusError::Daemon(format!("no registered session for {model}")))?;
        if descs.len() != mi.tensors.len() || dirty.len() != mi.tensors.len() {
            return Err(PortusError::StructureMismatch(format!(
                "{model}: session {} / dirty {} tensors vs index {}",
                descs.len(),
                dirty.len(),
                mi.tensors.len()
            )));
        }
        let prev = mi.latest_done();
        let prev_hdr = prev.map(|(_, h)| h);

        // Validate the session and split the dirty mask into work lists
        // BEFORE the slot is touched: a rejected request must leave
        // both slot headers exactly as they were. Clean tensors become
        // device-local carry-overs; dirty ones become posted pull runs.
        // Gaps left by clean tensors break runs, so only genuinely
        // adjacent pulls coalesce.
        let (mut pulled, mut copied) = (0u64, 0u64);
        let mut verbs = Vec::new();
        // Carry-overs as (src, rel_off, len): the source in the
        // previous Done slot (plain or extent-mapped), destination
        // rel_off in the target region.
        let mut carries: Vec<(CarrySrc, u64, u64)> = Vec::new();
        for ((rec, desc), &is_dirty) in mi.tensors.iter().zip(&descs).zip(dirty) {
            if desc.meta() != rec.meta {
                return Err(PortusError::StructureMismatch(format!(
                    "{model}: registered tensor {} does not match index",
                    desc.name
                )));
            }
            let len = rec.meta.size_bytes();
            // Without a previous complete version, everything must be
            // pulled regardless of the mask.
            match prev_hdr {
                Some(ph) if !is_dirty => {
                    let src = if ph.ext_map != 0 {
                        CarrySrc::Extents(ph.ext_map)
                    } else {
                        CarrySrc::Plain(ph.data_off + rec.rel_off)
                    };
                    carries.push((src, rec.rel_off, len));
                    copied += len;
                }
                _ => {
                    verbs.push(TensorVerb {
                        rel_off: rec.rel_off,
                        len,
                        rkey: desc.rkey,
                        name: desc.name.clone(),
                    });
                    pulled += len;
                }
            }
        }
        sc.record_now(Stage::Validate, t_op);

        let t_build = self.ctx.clock.now();
        let runs = coalesce_runs(&verbs);
        sc.record_now(Stage::WqeBuild, t_build);

        let target = mi.target_slot();
        // As in `checkpoint`: an extent-mapped target slot drops its
        // references before the slot is activated.
        if mi.slots[target].ext_map != 0 {
            crate::dedup::release_slot_extents(&self.index, &mut mi, target)?;
        }
        // As in `checkpoint`: the high-water mark across both headers,
        // not the latest `Done` version.
        let version = mi.next_version();
        // As in `checkpoint`: the post-attachment, pre-activation header
        // is the rollback target.
        let hdr = self.ensure_region_or_reclaim(&mut mi, target)?;
        self.index.mark_slot_active(&mi, target, version)?;

        let dev = Arc::clone(self.index.device());
        let ctx = &self.ctx;
        let striped = pool.len() > 1;
        let t0 = ctx.clock.now();
        // Carry-overs first (device-local), then the posted pulls. A
        // striped seal reuses the digest each copy computed from its
        // bounce buffer, so carried bytes are never read a second time.
        let mut carried = 0u64;
        let mut carry_pieces: Vec<SealPiece> = Vec::new();
        let carry_result: PortusResult<()> = carries.iter().try_for_each(|&(src, rel, len)| {
            let (digest, read_bytes) = match src {
                CarrySrc::Plain(s) => (copy_on_device(&dev, s, hdr.data_off + rel, len, rel)?, len),
                CarrySrc::Extents(map_off) => {
                    let rc = crate::dedup::copy_range_from_extents(
                        &self.index,
                        map_off,
                        hdr.data_off,
                        rel,
                        len,
                    )?;
                    (rc.digest, rc.read_bytes)
                }
            };
            ctx.charge(ctx.model.dax_read(read_bytes) + ctx.model.dax_write(len));
            ctx.stats.record_copy(len);
            carried += len;
            if striped {
                carry_pieces.push(SealPiece {
                    rel_off: rel,
                    len,
                    arrival: ctx.clock.now(),
                    digest: Some(digest),
                });
            }
            Ok(())
        });
        if let Err(e) = carry_result {
            self.rollback_best_effort(&mi, target, hdr, carried > 0);
            return Err(e);
        }
        // Only a carry loop that ran to completion gets a span — a
        // midway error must not be attributed as a finished stage.
        if !carries.is_empty() {
            sc.record_now(Stage::CarryCopy, t0);
        }
        let outcome =
            match self.execute_runs(pool, tenant, &runs, hdr.data_off, Direction::Pull, &sc) {
                Ok(outcome) => outcome,
                Err(fail) => {
                    // Bytes landed if any pull WQE succeeded — or if any
                    // carry-over copy already wrote into the slot.
                    self.rollback_best_effort(&mi, target, hdr, fail.any_succeeded || carried > 0);
                    return Err(fail.into_error(model, "delta-checkpoint"));
                }
            };
        if striped {
            let now = ctx.clock.now();
            let mut pieces = carry_pieces;
            pieces.extend(
                runs.iter()
                    .zip(&outcome.completions)
                    .map(|(run, c)| SealPiece {
                        rel_off: run.base_rel,
                        len: run.len,
                        arrival: c.map_or(now, |(_, end)| end),
                        digest: None,
                    }),
            );
            self.seal_slot_pipelined(&mi, target, hdr, hdr, pieces, &sc)?;
        } else {
            self.seal_slot(&mi, target, hdr, hdr, &sc)?;
        }
        // As in `checkpoint`: the sealed region enters the dedup tier.
        if let Some(dcfg) = &self.cfg.dedup {
            mi.slots[target].state = SlotState::Done;
            mi.slots[target].version = version;
            self.ingest_phase(&mut mi, target, dcfg, &sc);
        }
        let elapsed = ctx.clock.now().saturating_since(t0);
        sc.record_now(Stage::Total, t_op);
        Ok((version, pulled, copied, elapsed))
    }

    pub(crate) fn restore(
        &self,
        pool: &QpPool,
        tenant: &TenantCtx,
        model: &str,
        descs: &[TensorDesc],
        version: Option<u64>,
        req_id: u64,
    ) -> PortusResult<(u64, u64, SimDuration)> {
        let sc = SpanCtx::new(&self.ctx, req_id, TraceOp::Restore, model);
        let _active = self.qos.arbiter.op_guard(tenant);
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let t_op = self.ctx.clock.now();
        let mi = self.lookup(model, Some(&sc))?;
        // Version-pinned restores let a replicated or sharded client
        // settle every participant on one common checkpoint even when
        // some daemons hold a newer version in their other slot.
        let (slot, hdr) = match version {
            None => mi.latest_done(),
            Some(v) => mi.done_version(v),
        }
        .ok_or_else(|| PortusError::NoValidCheckpoint(model.to_string()))?;
        if descs.len() != mi.tensors.len() {
            return Err(PortusError::StructureMismatch(format!(
                "{model}: restore registered {} tensors, index has {}",
                descs.len(),
                mi.tensors.len()
            )));
        }
        let mut verbs = Vec::with_capacity(mi.tensors.len());
        for (rec, desc) in mi.tensors.iter().zip(descs) {
            if desc.meta() != rec.meta {
                return Err(PortusError::StructureMismatch(format!(
                    "{model}: restore tensor {} does not match index",
                    desc.name
                )));
            }
            verbs.push(TensorVerb {
                rel_off: rec.rel_off,
                len: rec.meta.size_bytes(),
                rkey: desc.rkey,
                name: desc.name.clone(),
            });
        }
        // Validate covers the index/descriptor reconciliation only; it
        // is recorded before the (separately staged) checksum pass so
        // the two spans do not overlap in the trace.
        sc.record_now(Stage::Validate, t_op);

        // An extent-mapped version is materialized into a scratch
        // region first, so the plain restore datapath (verify + pushes)
        // runs unchanged against it. This is where the compression
        // trade-off is paid: stored bytes come off media at DAX-read
        // cost (fewer when compressed), logical bytes land in the
        // scratch region at DAX-write cost. A crash mid-restore leaves
        // the scratch region unreachable and recovery GCs it.
        let mut scratch = None;
        let (mi, hdr) = if hdr.ext_map != 0 {
            let t_mat = self.ctx.clock.now();
            let m = crate::dedup::materialize_slot(&self.index, &mi, slot)?;
            self.ctx.charge(
                self.ctx.model.dax_read(m.stored_read) + self.ctx.model.dax_write(m.logical),
            );
            sc.record_now(Stage::Dedup, t_mat);
            let mut mi = mi;
            mi.slots[slot].data_off = m.region.offset;
            let mut hdr = hdr;
            hdr.data_off = m.region.offset;
            scratch = Some(m.region);
            (mi, hdr)
        } else {
            (mi, hdr)
        };

        let pushed = (|| -> PortusResult<SimDuration> {
            if self.cfg.verify_on_restore {
                self.verify_slot(&mi, slot, &hdr, model, &sc)?;
            }

            let t_build = self.ctx.clock.now();
            let runs = coalesce_runs(&verbs);
            sc.record_now(Stage::WqeBuild, t_build);

            let t0 = self.ctx.clock.now();
            // One-sided WRITEs, PMem → GPU: coalesced scatter WQEs under
            // one doorbell, no client CPU involvement. A terminal push
            // failure touches no slot state — the stored version stays
            // `Done` and a later restore can try again.
            self.execute_runs(pool, tenant, &runs, hdr.data_off, Direction::Push, &sc)
                .map_err(|fail| fail.into_error(model, "restore"))?;
            Ok(self.ctx.clock.now().saturating_since(t0))
        })();
        if let Some(region) = scratch {
            // Best-effort: freeing the scratch region must not mask the
            // restore's own outcome (a leak is reclaimed at recovery).
            let _ = self.index.allocator().free(&region);
        }
        let elapsed = pushed?;
        sc.record_now(Stage::Total, t_op);
        Ok((hdr.version, mi.total_bytes, elapsed))
    }

    pub(crate) fn mark_complete(&self, model: &str) -> PortusResult<()> {
        // Slot flags may not change under a concurrent checkpoint of
        // the same model: take the model lock like every other mutator.
        let lock = self.model_lock(model);
        let _guard = lock.lock();
        let mi = self.lookup(model, None)?;
        self.index.set_job_complete(&mi)
    }

    pub(crate) fn drop_model(&self, model: &str) -> PortusResult<()> {
        {
            let lock = self.model_lock(model);
            let _guard = lock.lock();
            let off = self
                .resolve_model(model)?
                .ok_or_else(|| PortusError::ModelNotFound(model.to_string()))?;
            self.index.remove_model_at(model, off)?;
            match self.catalog() {
                Some(cat) => {
                    cat.remove(self.index.allocator(), model)?;
                }
                None => {
                    self.map.lock().remove(model);
                }
            }
            self.sessions.lock().remove(model);
        }
        // Reap the per-model lock entry, or a long-lived multi-tenant
        // daemon grows `model_locks` without bound. Holding the
        // `model_locks` mutex means nobody can clone the Arc
        // concurrently, so a strong count of 1 (the map's own
        // reference) proves no waiter holds it; leave it for a
        // contending thread to observe `ModelNotFound` otherwise.
        let mut locks = self.model_locks.lock();
        if let Some(l) = locks.get(model) {
            if Arc::strong_count(l) == 1 {
                locks.remove(model);
            }
        }
        Ok(())
    }

    pub(crate) fn list_models(&self) -> PortusResult<Vec<ModelSummary>> {
        let offsets: Vec<(String, u64)> = match self.catalog() {
            Some(cat) => cat.scan()?,
            None => self
                .map
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        };
        let mut out = Vec::with_capacity(offsets.len());
        for (name, off) in offsets {
            let mi = self.index.load_mindex(off)?;
            out.push(ModelSummary {
                name,
                layers: mi.tensors.len() as u32,
                bytes: mi.total_bytes,
                latest_version: mi.latest_done().map(|(_, s)| s.version),
                valid_versions: mi.valid_versions(),
                done_versions: mi.done_versions(),
                complete: mi.flags & crate::FLAG_JOB_COMPLETE != 0,
            });
        }
        Ok(out)
    }
}
