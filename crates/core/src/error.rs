//! Error types for Portus.

use std::error::Error;
use std::fmt;

use portus_format::FormatError;
use portus_mem::MemError;
use portus_pmem::PmemError;
use portus_rdma::RdmaError;

/// Result alias for Portus operations.
pub type PortusResult<T> = Result<T, PortusError>;

/// One work request that stayed failed after the daemon exhausted its
/// per-WQE retries: which tensors rode the WQE, how often it was
/// re-posted, and the final fabric error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerbFailure {
    /// Names of the tensors coalesced into the failed work request.
    pub tensors: Vec<String>,
    /// How many times the daemon re-posted the WQE before giving up.
    pub retries: u32,
    /// The fabric error of the last attempt, rendered.
    pub error: String,
}

impl fmt::Display for VerbFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] after {} retries: {}",
            self.tensors.join(", "),
            self.retries,
            self.error
        )
    }
}

/// One shard's failure inside a lockstep barrier: which shard, which
/// model, and the error it hit (rendered, so the aggregate stays
/// `Clone + Eq`-friendly for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The shard's index in the sharded trainer.
    pub shard: usize,
    /// The shard's model name.
    pub model: String,
    /// The failure, rendered.
    pub error: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} ({}): {}", self.shard, self.model, self.error)
    }
}

/// Errors raised by the Portus client, daemon, and tooling.
#[derive(Debug)]
pub enum PortusError {
    /// Underlying persistent-memory failure.
    Pmem(PmemError),
    /// Underlying fabric failure.
    Rdma(RdmaError),
    /// Underlying memory failure.
    Mem(MemError),
    /// Container encode/decode failure (portusctl dump).
    Format(FormatError),
    /// The named model is not registered / not on the device.
    ModelNotFound(String),
    /// Registration conflicts with an existing model of the same name
    /// but different structure.
    StructureMismatch(String),
    /// No complete (DONE) checkpoint version exists for the model.
    NoValidCheckpoint(String),
    /// A stored checkpoint failed its integrity check.
    ChecksumMismatch {
        /// The model.
        model: String,
        /// The version whose data failed verification.
        version: u64,
    },
    /// An asynchronous checkpoint of the model is already in flight;
    /// wait on it (or call `guard_update`) before starting another.
    AlreadyInFlight(String),
    /// One or more datapath transfers stayed failed after the daemon's
    /// per-WQE retries. The checkpoint slot was rolled back: the model's
    /// previous complete version is untouched and still restorable.
    DatapathFailed {
        /// The model whose operation failed.
        model: String,
        /// Which operation was in flight (`"checkpoint"`,
        /// `"delta-checkpoint"`, or `"restore"`).
        op: String,
        /// The work requests that exhausted their retries.
        failures: Vec<VerbFailure>,
    },
    /// The persistent index and the allocator disagree: a slot header
    /// points at a data region the allocator has no record of. This is
    /// metadata corruption — the repacker surfaces it instead of
    /// silently clearing the header (which would leak the bytes and
    /// destroy the evidence).
    AllocatorDivergence {
        /// The model whose slot diverged.
        model: String,
        /// The slot index within the model's double mapping.
        slot: usize,
        /// The orphaned `data_off` the header points at.
        data_off: u64,
    },
    /// The daemon shed the request: the tenant is over its token-bucket
    /// budget, or the dispatch queue stayed full past the shed wait.
    /// Nothing was done — no slot was touched, no version consumed.
    /// Retrying after the hinted wait (virtual time) will usually
    /// succeed; [`crate::PortusClient::set_throttle_retries`] makes the
    /// client honor the hint automatically.
    Throttled {
        /// Virtual nanoseconds to wait before retrying.
        retry_after_ns: u64,
    },
    /// The device cannot hold the checkpoint even after a repack pass
    /// reclaimed everything reclaimable. Carries the allocator's view
    /// at the moment of the final failed allocation so the operator can
    /// tell exhaustion (`free < needed`) from fragmentation
    /// (`free >= needed > largest_extent`).
    OutOfSpace {
        /// Bytes the failed allocation asked for.
        needed: u64,
        /// Total free bytes at the time of failure.
        free: u64,
        /// Largest contiguous free extent at the time of failure.
        largest_extent: u64,
    },
    /// The model catalog (the fixed ModelTable) has no free entry for
    /// a new model. Carries the table's capacity so the operator knows
    /// what to re-format with — distinct from [`PortusError::OutOfSpace`],
    /// which is about payload bytes, not name slots.
    CatalogFull {
        /// Total entries the ModelTable was formatted with.
        capacity: u32,
    },
    /// One or more shards of a lockstep barrier failed their
    /// checkpoint. Every shard was still driven to the barrier
    /// iteration (none silently falls behind); the failures carry
    /// per-shard attribution so the caller can retry or recover to a
    /// common version.
    ShardBarrier {
        /// The iteration every shard was driven to.
        barrier_step: u64,
        /// The shards that failed, in shard order.
        failures: Vec<ShardFailure>,
    },
    /// Every replica of a replicated operation failed. Carries the
    /// per-replica attempts (replica index, rendered error) in the
    /// order they were tried.
    ReplicasExhausted {
        /// The model whose operation failed everywhere.
        model: String,
        /// Which operation was in flight.
        op: String,
        /// `(replica index, rendered error)` per attempt.
        attempts: Vec<(usize, String)>,
    },
    /// A protocol violation or daemon-side failure, with the daemon's
    /// message.
    Daemon(String),
    /// A tensor name exceeds the fixed on-media name field.
    NameTooLong(String),
    /// An I/O error in the tooling (portusctl files).
    Io(std::io::Error),
}

impl fmt::Display for PortusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortusError::Pmem(e) => write!(f, "persistent memory error: {e}"),
            PortusError::Rdma(e) => write!(f, "fabric error: {e}"),
            PortusError::Mem(e) => write!(f, "memory error: {e}"),
            PortusError::Format(e) => write!(f, "container error: {e}"),
            PortusError::ModelNotFound(m) => write!(f, "model not found: {m}"),
            PortusError::StructureMismatch(what) => {
                write!(f, "model structure mismatch: {what}")
            }
            PortusError::NoValidCheckpoint(m) => {
                write!(f, "no complete checkpoint version for model {m}")
            }
            PortusError::ChecksumMismatch { model, version } => {
                write!(
                    f,
                    "checkpoint {model} v{version} failed integrity verification"
                )
            }
            PortusError::AlreadyInFlight(m) => {
                write!(f, "an async checkpoint of model {m} is already in flight")
            }
            PortusError::DatapathFailed {
                model,
                op,
                failures,
            } => {
                write!(
                    f,
                    "{op} of model {model} failed on the datapath ({} WQE(s) exhausted retries):",
                    failures.len()
                )?;
                for failure in failures {
                    write!(f, " {failure};")?;
                }
                Ok(())
            }
            PortusError::AllocatorDivergence {
                model,
                slot,
                data_off,
            } => {
                write!(
                    f,
                    "index/allocator divergence: {model} slot {slot} points at \
                     data_off {data_off:#x} with no matching allocation"
                )
            }
            PortusError::Throttled { retry_after_ns } => {
                write!(
                    f,
                    "request throttled by the daemon; retry after {retry_after_ns}ns"
                )
            }
            PortusError::OutOfSpace {
                needed,
                free,
                largest_extent,
            } => {
                write!(
                    f,
                    "out of PMem space after repacking: need {needed} bytes, \
                     {free} free, largest extent {largest_extent}"
                )
            }
            PortusError::CatalogFull { capacity } => {
                write!(
                    f,
                    "model catalog is full: all {capacity} ModelTable entries are live"
                )
            }
            PortusError::ShardBarrier {
                barrier_step,
                failures,
            } => {
                write!(
                    f,
                    "{} shard(s) failed their checkpoint at barrier step {barrier_step}:",
                    failures.len()
                )?;
                for failure in failures {
                    write!(f, " {failure};")?;
                }
                Ok(())
            }
            PortusError::ReplicasExhausted {
                model,
                op,
                attempts,
            } => {
                write!(
                    f,
                    "{op} of model {model} failed on all {} replica(s):",
                    attempts.len()
                )?;
                for (replica, error) in attempts {
                    write!(f, " replica {replica}: {error};")?;
                }
                Ok(())
            }
            PortusError::Daemon(msg) => write!(f, "daemon error: {msg}"),
            PortusError::NameTooLong(name) => {
                write!(f, "tensor name exceeds on-media field: {name}")
            }
            PortusError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for PortusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PortusError::Pmem(e) => Some(e),
            PortusError::Rdma(e) => Some(e),
            PortusError::Mem(e) => Some(e),
            PortusError::Format(e) => Some(e),
            PortusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmemError> for PortusError {
    fn from(e: PmemError) -> Self {
        PortusError::Pmem(e)
    }
}

impl From<RdmaError> for PortusError {
    fn from(e: RdmaError) -> Self {
        PortusError::Rdma(e)
    }
}

impl From<MemError> for PortusError {
    fn from(e: MemError) -> Self {
        PortusError::Mem(e)
    }
}

impl From<FormatError> for PortusError {
    fn from(e: FormatError) -> Self {
        PortusError::Format(e)
    }
}

impl From<std::io::Error> for PortusError {
    fn from(e: std::io::Error) -> Self {
        PortusError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_behave() {
        let e = PortusError::from(PmemError::TableFull);
        assert!(e.to_string().contains("no free slots"));
        assert!(Error::source(&e).is_some());
        assert!(PortusError::ModelNotFound("bert".into())
            .to_string()
            .contains("bert"));
    }

    #[test]
    fn datapath_failure_display_attributes_tensors() {
        let e = PortusError::DatapathFailed {
            model: "bert".into(),
            op: "checkpoint".into(),
            failures: vec![VerbFailure {
                tensors: vec!["layer0".into(), "layer1".into()],
                retries: 3,
                error: "injected fault on verb #1".into(),
            }],
        };
        let msg = e.to_string();
        assert!(msg.contains("checkpoint of model bert"));
        assert!(msg.contains("layer0, layer1"));
        assert!(msg.contains("3 retries"));
        assert!(msg.contains("injected fault"));
    }

    #[test]
    fn allocator_divergence_display_names_the_slot() {
        let e = PortusError::AllocatorDivergence {
            model: "bert".into(),
            slot: 1,
            data_off: 0x4000,
        };
        let msg = e.to_string();
        assert!(msg.contains("divergence"));
        assert!(msg.contains("bert slot 1"));
        assert!(msg.contains("0x4000"));
    }

    #[test]
    fn out_of_space_display_reports_the_allocator_view() {
        let e = PortusError::OutOfSpace {
            needed: 8192,
            free: 4096,
            largest_extent: 1024,
        };
        let msg = e.to_string();
        assert!(msg.contains("out of PMem space"));
        assert!(msg.contains("8192"));
        assert!(msg.contains("4096"));
        assert!(msg.contains("1024"));
    }

    #[test]
    fn shard_barrier_display_attributes_shards() {
        let e = PortusError::ShardBarrier {
            barrier_step: 40,
            failures: vec![ShardFailure {
                shard: 2,
                model: "gpt/shard-2".into(),
                error: "datapath failed".into(),
            }],
        };
        let msg = e.to_string();
        assert!(msg.contains("barrier step 40"));
        assert!(msg.contains("shard 2 (gpt/shard-2)"));
        assert!(msg.contains("datapath failed"));
    }

    #[test]
    fn replicas_exhausted_display_lists_attempts() {
        let e = PortusError::ReplicasExhausted {
            model: "bert".into(),
            op: "restore".into(),
            attempts: vec![(0, "fabric down".into()), (1, "no valid checkpoint".into())],
        };
        let msg = e.to_string();
        assert!(msg.contains("restore of model bert"));
        assert!(msg.contains("all 2 replica(s)"));
        assert!(msg.contains("replica 0: fabric down"));
        assert!(msg.contains("replica 1: no valid checkpoint"));
    }

    #[test]
    fn throttled_display_carries_the_retry_hint() {
        let e = PortusError::Throttled {
            retry_after_ns: 2_500_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("throttled"));
        assert!(msg.contains("2500000ns"));
    }

    #[test]
    fn catalog_full_display_carries_the_capacity() {
        let e = PortusError::CatalogFull { capacity: 32 };
        let msg = e.to_string();
        assert!(msg.contains("catalog is full"));
        assert!(msg.contains("32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PortusError>();
    }
}
