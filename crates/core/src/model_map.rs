//! ModelMap: the in-DRAM red-black tree over model names.
//!
//! The paper keeps the persistent ModelTable as a sorted array on PMem
//! and mirrors it in main memory as "a red-black tree structure ...
//! called ModelMap ... to quickly look up and locate the target model"
//! (§III-D1). Each entry maps a model name to the PMem offset of its
//! MIndex record. This is a self-contained red-black tree implementation
//! (insert, delete, lookup, ordered iteration) with the classic
//! CLRS fix-up procedures, using index-based nodes so it stays entirely
//! in safe Rust.

use std::cmp::Ordering;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node {
    key: String,
    value: u64,
    color: Color,
    parent: usize,
    left: usize,
    right: usize,
}

/// An ordered map from model name to MIndex offset.
///
/// # Examples
///
/// ```
/// use portus::ModelMap;
///
/// let mut map = ModelMap::new();
/// map.insert("bert-large".to_string(), 4096);
/// assert_eq!(map.get("bert-large"), Some(4096));
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ModelMap {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl ModelMap {
    /// An empty map.
    pub fn new() -> ModelMap {
        ModelMap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate DRAM footprint of the map: node slab plus owned key
    /// heap allocations. Feeds the `model_map_bytes` gauge so operators
    /// can see the mirror's unbounded growth (or, with the paged
    /// catalog enabled, see it pinned near zero).
    pub fn approx_bytes(&self) -> u64 {
        let slab = self.nodes.capacity() * std::mem::size_of::<Node>();
        let keys: usize = self.nodes.iter().map(|n| n.key.capacity()).sum();
        (slab + keys) as u64
    }

    /// Looks up the MIndex offset of `key`.
    pub fn get(&self, key: &str) -> Option<u64> {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(self.nodes[cur].key.as_str()) {
                Ordering::Less => cur = self.nodes[cur].left,
                Ordering::Greater => cur = self.nodes[cur].right,
                Ordering::Equal => return Some(self.nodes[cur].value),
            }
        }
        None
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or updates `key`; returns the previous value if any.
    pub fn insert(&mut self, key: String, value: u64) -> Option<u64> {
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            match key.as_str().cmp(self.nodes[cur].key.as_str()) {
                Ordering::Less => cur = self.nodes[cur].left,
                Ordering::Greater => cur = self.nodes[cur].right,
                Ordering::Equal => {
                    let old = self.nodes[cur].value;
                    self.nodes[cur].value = value;
                    return Some(old);
                }
            }
        }
        let idx = self.alloc_node(Node {
            key,
            value,
            color: Color::Red,
            parent,
            left: NIL,
            right: NIL,
        });
        if parent == NIL {
            self.root = idx;
        } else if self.nodes[idx].key < self.nodes[parent].key {
            self.nodes[parent].left = idx;
        } else {
            self.nodes[parent].right = idx;
        }
        self.len += 1;
        self.insert_fixup(idx);
        None
    }

    /// Removes `key`; returns its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<u64> {
        let mut z = self.root;
        while z != NIL {
            match key.cmp(self.nodes[z].key.as_str()) {
                Ordering::Less => z = self.nodes[z].left,
                Ordering::Greater => z = self.nodes[z].right,
                Ordering::Equal => break,
            }
        }
        if z == NIL {
            return None;
        }
        let value = self.nodes[z].value;
        self.delete_node(z);
        self.len -= 1;
        Some(value)
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> Iter<'_> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.nodes[cur].left;
        }
        Iter { map: self, stack }
    }

    // ---- internals -------------------------------------------------

    fn alloc_node(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn color(&self, x: usize) -> Color {
        if x == NIL {
            Color::Black
        } else {
            self.nodes[x].color
        }
    }

    fn set_color(&mut self, x: usize, c: Color) {
        if x != NIL {
            self.nodes[x].color = c;
        }
    }

    fn left_rotate(&mut self, x: usize) {
        let y = self.nodes[x].right;
        let yl = self.nodes[y].left;
        self.nodes[x].right = yl;
        if yl != NIL {
            self.nodes[yl].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
    }

    fn right_rotate(&mut self, x: usize) {
        let y = self.nodes[x].left;
        let yr = self.nodes[y].right;
        self.nodes[x].left = yr;
        if yr != NIL {
            self.nodes[yr].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.color(self.nodes[z].parent) == Color::Red {
            let p = self.nodes[z].parent;
            let g = self.nodes[p].parent;
            if p == self.nodes[g].left {
                let u = self.nodes[g].right;
                if self.color(u) == Color::Red {
                    self.set_color(p, Color::Black);
                    self.set_color(u, Color::Black);
                    self.set_color(g, Color::Red);
                    z = g;
                } else {
                    if z == self.nodes[p].right {
                        z = p;
                        self.left_rotate(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.set_color(p, Color::Black);
                    self.set_color(g, Color::Red);
                    self.right_rotate(g);
                }
            } else {
                let u = self.nodes[g].left;
                if self.color(u) == Color::Red {
                    self.set_color(p, Color::Black);
                    self.set_color(u, Color::Black);
                    self.set_color(g, Color::Red);
                    z = g;
                } else {
                    if z == self.nodes[p].left {
                        z = p;
                        self.right_rotate(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.set_color(p, Color::Black);
                    self.set_color(g, Color::Red);
                    self.left_rotate(g);
                }
            }
        }
        let root = self.root;
        self.set_color(root, Color::Black);
    }

    fn minimum(&self, mut x: usize) -> usize {
        while self.nodes[x].left != NIL {
            x = self.nodes[x].left;
        }
        x
    }

    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.nodes[u].parent;
        if up == NIL {
            self.root = v;
        } else if self.nodes[up].left == u {
            self.nodes[up].left = v;
        } else {
            self.nodes[up].right = v;
        }
        if v != NIL {
            self.nodes[v].parent = up;
        }
    }

    fn delete_node(&mut self, z: usize) {
        // CLRS delete with an explicit (x, x_parent) pair instead of a
        // sentinel NIL node.
        let mut y = z;
        let mut y_color = self.color(y);
        let x;
        let x_parent;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            x_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            x_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z].right);
            y_color = self.color(y);
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                x_parent = y;
            } else {
                x_parent = self.nodes[y].parent;
                self.transplant(y, x);
                let zr = self.nodes[z].right;
                self.nodes[y].right = zr;
                if zr != NIL {
                    self.nodes[zr].parent = y;
                }
            }
            self.transplant(z, y);
            let zl = self.nodes[z].left;
            self.nodes[y].left = zl;
            if zl != NIL {
                self.nodes[zl].parent = y;
            }
            self.nodes[y].color = self.nodes[z].color;
        }
        if y_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        self.free.push(z);
        // Make the freed slot inert — including its payload: a freed
        // node that kept its key would pin the String's heap allocation
        // for the life of the map (and leak the model name).
        self.nodes[z].parent = NIL;
        self.nodes[z].left = NIL;
        self.nodes[z].right = NIL;
        self.nodes[z].key = String::new();
        self.nodes[z].value = 0;
    }

    fn delete_fixup(&mut self, mut x: usize, mut x_parent: usize) {
        while x != self.root && self.color(x) == Color::Black {
            if x_parent == NIL {
                break;
            }
            if x == self.nodes[x_parent].left {
                let mut w = self.nodes[x_parent].right;
                if self.color(w) == Color::Red {
                    self.set_color(w, Color::Black);
                    self.set_color(x_parent, Color::Red);
                    self.left_rotate(x_parent);
                    w = self.nodes[x_parent].right;
                }
                if self.color(self.nodes[w].left) == Color::Black
                    && self.color(self.nodes[w].right) == Color::Black
                {
                    self.set_color(w, Color::Red);
                    x = x_parent;
                    x_parent = self.nodes[x].parent;
                } else {
                    if self.color(self.nodes[w].right) == Color::Black {
                        let wl = self.nodes[w].left;
                        self.set_color(wl, Color::Black);
                        self.set_color(w, Color::Red);
                        self.right_rotate(w);
                        w = self.nodes[x_parent].right;
                    }
                    self.nodes[w].color = self.nodes[x_parent].color;
                    self.set_color(x_parent, Color::Black);
                    let wr = self.nodes[w].right;
                    self.set_color(wr, Color::Black);
                    self.left_rotate(x_parent);
                    x = self.root;
                    break;
                }
            } else {
                let mut w = self.nodes[x_parent].left;
                if self.color(w) == Color::Red {
                    self.set_color(w, Color::Black);
                    self.set_color(x_parent, Color::Red);
                    self.right_rotate(x_parent);
                    w = self.nodes[x_parent].left;
                }
                if self.color(self.nodes[w].right) == Color::Black
                    && self.color(self.nodes[w].left) == Color::Black
                {
                    self.set_color(w, Color::Red);
                    x = x_parent;
                    x_parent = self.nodes[x].parent;
                } else {
                    if self.color(self.nodes[w].left) == Color::Black {
                        let wr = self.nodes[w].right;
                        self.set_color(wr, Color::Black);
                        self.set_color(w, Color::Red);
                        self.left_rotate(w);
                        w = self.nodes[x_parent].left;
                    }
                    self.nodes[w].color = self.nodes[x_parent].color;
                    self.set_color(x_parent, Color::Black);
                    let wl = self.nodes[w].left;
                    self.set_color(wl, Color::Black);
                    self.right_rotate(x_parent);
                    x = self.root;
                    break;
                }
            }
        }
        self.set_color(x, Color::Black);
    }

    /// Verifies the red-black invariants; used by tests.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if self.root == NIL {
            return;
        }
        assert_eq!(self.color(self.root), Color::Black, "root must be black");
        self.check_subtree(self.root);
    }

    fn check_subtree(&self, x: usize) -> usize {
        if x == NIL {
            return 1; // NIL is black
        }
        let n = &self.nodes[x];
        if n.color == Color::Red {
            assert_eq!(
                self.color(n.left),
                Color::Black,
                "red node with red left child"
            );
            assert_eq!(
                self.color(n.right),
                Color::Black,
                "red node with red right child"
            );
        }
        if n.left != NIL {
            assert!(self.nodes[n.left].key < n.key, "BST order violated");
            assert_eq!(self.nodes[n.left].parent, x, "parent link broken");
        }
        if n.right != NIL {
            assert!(self.nodes[n.right].key > n.key, "BST order violated");
            assert_eq!(self.nodes[n.right].parent, x, "parent link broken");
        }
        let lh = self.check_subtree(n.left);
        let rh = self.check_subtree(n.right);
        assert_eq!(lh, rh, "black-height mismatch");
        lh + usize::from(n.color == Color::Black)
    }
}

/// Ascending-order iterator over [`ModelMap`] entries.
#[derive(Debug)]
pub struct Iter<'a> {
    map: &'a ModelMap,
    stack: Vec<usize>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a str, u64);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let node = &self.map.nodes[idx];
        let mut cur = node.right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.map.nodes[cur].left;
        }
        Some((node.key.as_str(), node.value))
    }
}

impl<'a> IntoIterator for &'a ModelMap {
    type Item = (&'a str, u64);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<(String, u64)> for ModelMap {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> ModelMap {
        let mut map = ModelMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Extend<(String, u64)> for ModelMap {
    fn extend<I: IntoIterator<Item = (String, u64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = ModelMap::new();
        assert_eq!(m.insert("bert".into(), 1), None);
        assert_eq!(m.insert("gpt".into(), 2), None);
        assert_eq!(m.insert("bert".into(), 3), Some(1));
        assert_eq!(m.get("bert"), Some(3));
        assert_eq!(m.remove("bert"), Some(3));
        assert_eq!(m.get("bert"), None);
        assert_eq!(m.remove("bert"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = ModelMap::new();
        for name in ["swin", "alexnet", "vit", "bert", "resnet"] {
            m.insert(name.into(), name.len() as u64);
        }
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alexnet", "bert", "resnet", "swin", "vit"]);
    }

    #[test]
    fn invariants_hold_under_churn() {
        let mut m = ModelMap::new();
        // Deterministic churn: insert 500, delete every third, insert more.
        for i in 0..500u64 {
            m.insert(format!("model-{:03}", (i * 7919) % 500), i);
            m.check_invariants();
        }
        for i in (0..500u64).step_by(3) {
            m.remove(&format!("model-{i:03}"));
            m.check_invariants();
            // Freed slots must be fully inert: a slot that kept its key
            // would pin the name's heap allocation until the slot is
            // recycled (or forever, on a shrinking map).
            for &z in &m.free {
                assert!(m.nodes[z].key.is_empty(), "freed slot {z} retains a key");
                assert_eq!(m.nodes[z].value, 0, "freed slot {z} retains a value");
            }
        }
        for i in 500..600u64 {
            m.insert(format!("model-{i:03}"), i);
            m.check_invariants();
        }
        // Everything still reachable and ordered.
        let keys: Vec<String> = m.iter().map(|(k, _)| k.to_string()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn matches_btreemap_reference() {
        use std::collections::BTreeMap;
        let mut ours = ModelMap::new();
        let mut reference = BTreeMap::new();
        let mut state = 0x12345678u64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = format!("k{}", state % 200);
            let op = (state >> 32) % 3;
            match op {
                0 | 1 => {
                    assert_eq!(
                        ours.insert(key.clone(), state),
                        reference.insert(key, state)
                    );
                }
                _ => {
                    assert_eq!(ours.remove(&key), reference.remove(&key));
                }
            }
            assert_eq!(ours.len(), reference.len());
        }
        ours.check_invariants();
        let a: Vec<(String, u64)> = ours.iter().map(|(k, v)| (k.to_string(), v)).collect();
        let b: Vec<(String, u64)> = reference.into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn collects_from_iterator() {
        let m: ModelMap = vec![("a".to_string(), 1), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("b"), Some(2));
    }

    #[test]
    fn empty_map_behaves() {
        let m = ModelMap::new();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        m.check_invariants();
    }
}
