//! The client↔daemon control protocol.
//!
//! Carried over the TCP-over-IPoIB [`portus_rdma::ControlChannel`]. The
//! registration packet "aggregates [remote keys] with the metadata of
//! layers one-to-one correspondingly ... to describe a DNN model"
//! (§III-B); checkpointing is triggered by the literal `DO_CHECKPOINT`
//! message of §III-C, represented here as [`Request::Checkpoint`].

use portus_dnn::{DType, GpuTensor, TensorMeta};
use portus_rdma::MemoryRegion;
use portus_sim::{MetricsSnapshot, SimDuration};

/// One tensor's registration: its metadata plus the remote key of the
/// GPU memory region holding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorDesc {
    /// Layer/tensor name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Dimension sizes.
    pub shape: Vec<u64>,
    /// Remote key of the registered GPU region.
    pub rkey: u64,
}

impl TensorDesc {
    /// Builds a descriptor from a GPU tensor and its registration.
    pub fn from_registration(tensor: &GpuTensor, mr: &MemoryRegion) -> TensorDesc {
        TensorDesc {
            name: tensor.meta.name.clone(),
            dtype: tensor.meta.dtype,
            shape: tensor.meta.shape.clone(),
            rkey: mr.rkey(),
        }
    }

    /// The tensor metadata carried by this descriptor.
    pub fn meta(&self) -> TensorMeta {
        TensorMeta::new(self.name.clone(), self.dtype, self.shape.clone())
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.meta().size_bytes()
    }
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Describe a model (or model shard) and its registered GPU regions.
    Register {
        /// Request id for reply matching.
        req_id: u64,
        /// Model (shard) name — the ModelTable key.
        model: String,
        /// Per-tensor metadata + rkeys, in layer order.
        tensors: Vec<TensorDesc>,
    },
    /// Incremental `DO_CHECKPOINT`: pull only the tensors flagged dirty;
    /// carry the rest over from the previous complete version with a
    /// device-local copy (a Check-N-Run-style extension; see DESIGN.md).
    DeltaCheckpoint {
        /// Request id for reply matching.
        req_id: u64,
        /// Model to checkpoint.
        model: String,
        /// One flag per tensor, in layer order: `true` = changed since
        /// the last checkpoint.
        dirty: Vec<bool>,
    },
    /// `DO_CHECKPOINT`: pull the model's tensors into PMem.
    Checkpoint {
        /// Request id for reply matching.
        req_id: u64,
        /// Model to checkpoint.
        model: String,
    },
    /// Push a complete checkpoint back into freshly registered GPU
    /// regions.
    Restore {
        /// Request id for reply matching.
        req_id: u64,
        /// Model to restore.
        model: String,
        /// Write-registered GPU regions, in layer order.
        tensors: Vec<TensorDesc>,
        /// Which Done version to serve (`None` = latest). Replicated
        /// restores pin the version so every shard/replica settles on
        /// the same checkpoint.
        version: Option<u64>,
    },
    /// Mark the training job complete (both checkpoint versions beyond
    /// the latest become reclaimable by the repacker).
    MarkComplete {
        /// Request id for reply matching.
        req_id: u64,
        /// The finished model.
        model: String,
    },
    /// Remove the model and free its PMem.
    Drop {
        /// Request id for reply matching.
        req_id: u64,
        /// Model to drop.
        model: String,
    },
    /// List models stored on the daemon's PMem.
    List {
        /// Request id for reply matching.
        req_id: u64,
    },
    /// Dump the daemon's observability snapshot: stage-latency
    /// histograms and dispatch-queue gauges.
    Stats {
        /// Request id for reply matching.
        req_id: u64,
    },
    /// Close this connection.
    Disconnect,
}

impl Request {
    /// The request id carried by this request (`None` for
    /// [`Request::Disconnect`], which has no reply).
    pub fn req_id(&self) -> Option<u64> {
        match self {
            Request::Register { req_id, .. }
            | Request::DeltaCheckpoint { req_id, .. }
            | Request::Checkpoint { req_id, .. }
            | Request::Restore { req_id, .. }
            | Request::MarkComplete { req_id, .. }
            | Request::Drop { req_id, .. }
            | Request::List { req_id }
            | Request::Stats { req_id } => Some(*req_id),
            Request::Disconnect => None,
        }
    }
}

/// A model as reported by [`Request::List`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Model (shard) name.
    pub name: String,
    /// Number of tensors.
    pub layers: u32,
    /// Checkpoint payload bytes (one version).
    pub bytes: u64,
    /// Latest complete version, if any.
    pub latest_version: Option<u64>,
    /// Number of complete versions currently on PMem (0–2).
    pub valid_versions: u8,
    /// Every Done version currently on PMem, ascending (what a
    /// version-pinned [`Request::Restore`] may ask for).
    pub done_versions: Vec<u64>,
    /// Whether the training job was marked complete.
    pub complete: bool,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Registration accepted.
    Registered {
        /// Echoed request id.
        req_id: u64,
        /// Number of on-PMem checkpoint slots (the double mapping: 2).
        slots: u8,
    },
    /// An incremental checkpoint version is complete and durable.
    DeltaDone {
        /// Echoed request id.
        req_id: u64,
        /// The new version number.
        version: u64,
        /// Bytes pulled over the fabric (the dirty tensors).
        pulled_bytes: u64,
        /// Bytes carried over device-locally from the previous version.
        copied_bytes: u64,
        /// Daemon-side virtual time for the operation.
        elapsed: SimDuration,
    },
    /// A checkpoint version is complete and durable.
    CheckpointDone {
        /// Echoed request id.
        req_id: u64,
        /// The new version number.
        version: u64,
        /// Payload bytes pulled.
        bytes: u64,
        /// Daemon-side virtual time for the operation.
        elapsed: SimDuration,
    },
    /// The model has been written back to GPU memory.
    RestoreDone {
        /// Echoed request id.
        req_id: u64,
        /// The version that was restored.
        version: u64,
        /// Payload bytes pushed.
        bytes: u64,
        /// Daemon-side virtual time for the operation.
        elapsed: SimDuration,
    },
    /// MarkComplete acknowledged.
    Completed {
        /// Echoed request id.
        req_id: u64,
    },
    /// Drop acknowledged.
    Dropped {
        /// Echoed request id.
        req_id: u64,
    },
    /// Listing result.
    Models {
        /// Echoed request id.
        req_id: u64,
        /// Stored models.
        models: Vec<ModelSummary>,
    },
    /// Observability snapshot: per-stage latency histograms plus the
    /// dispatch-queue gauges, all keyed to the virtual clock.
    Stats {
        /// Echoed request id.
        req_id: u64,
        /// The daemon's metrics at the time of the request (boxed: the
        /// snapshot dwarfs every other reply variant).
        metrics: Box<MetricsSnapshot>,
    },
    /// The request failed; human-readable reason.
    Error {
        /// Echoed request id.
        req_id: u64,
        /// What went wrong.
        message: String,
    },
    /// The request failed on the datapath: one or more WQEs exhausted
    /// their retries. Structured so the client can surface per-tensor
    /// attribution ([`crate::PortusError::DatapathFailed`]); the daemon
    /// has already rolled the target slot back.
    DatapathFailed {
        /// Echoed request id.
        req_id: u64,
        /// The model whose operation failed.
        model: String,
        /// Which operation was in flight.
        op: String,
        /// The work requests that stayed failed.
        failures: Vec<crate::VerbFailure>,
    },
    /// The request was shed by admission control (token bucket over
    /// budget) or by a dispatch queue that stayed full past the shed
    /// wait. Typed overload: the client rebuilds
    /// [`crate::PortusError::Throttled`] and may honor the retry hint.
    Throttled {
        /// Echoed request id.
        req_id: u64,
        /// Virtual nanoseconds the daemon suggests waiting before a
        /// retry (the token bucket's exact deficit, or the configured
        /// queue-shed hint).
        retry_after_ns: u64,
    },
    /// The request failed because the device cannot hold the checkpoint
    /// even after the daemon's automatic repack-and-retry. Structured so
    /// the client can rebuild [`crate::PortusError::OutOfSpace`].
    OutOfSpace {
        /// Echoed request id.
        req_id: u64,
        /// Bytes the failed allocation asked for.
        needed: u64,
        /// Total free bytes at the time of failure.
        free: u64,
        /// Largest contiguous free extent at the time of failure.
        largest_extent: u64,
    },
    /// The request failed because every ModelTable entry is live — the
    /// model catalog has no free slot for a new name. Structured so the
    /// client can rebuild [`crate::PortusError::CatalogFull`].
    CatalogFull {
        /// Echoed request id.
        req_id: u64,
        /// Total entries the ModelTable was formatted with.
        capacity: u32,
    },
}

impl Reply {
    /// The request id this reply answers.
    pub fn req_id(&self) -> u64 {
        match self {
            Reply::Registered { req_id, .. }
            | Reply::DeltaDone { req_id, .. }
            | Reply::CheckpointDone { req_id, .. }
            | Reply::RestoreDone { req_id, .. }
            | Reply::Completed { req_id }
            | Reply::Dropped { req_id }
            | Reply::Models { req_id, .. }
            | Reply::Stats { req_id, .. }
            | Reply::Error { req_id, .. }
            | Reply::DatapathFailed { req_id, .. }
            | Reply::Throttled { req_id, .. }
            | Reply::OutOfSpace { req_id, .. }
            | Reply::CatalogFull { req_id, .. } => *req_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_desc_size() {
        let d = TensorDesc {
            name: "w".into(),
            dtype: DType::F32,
            shape: vec![512, 1024],
            rkey: 7,
        };
        assert_eq!(d.size_bytes(), 512 * 1024 * 4);
        assert_eq!(d.meta().name, "w");
    }

    #[test]
    fn reply_req_id_extraction() {
        let r = Reply::CheckpointDone {
            req_id: 42,
            version: 1,
            bytes: 10,
            elapsed: SimDuration::ZERO,
        };
        assert_eq!(r.req_id(), 42);
        assert_eq!(Reply::Dropped { req_id: 9 }.req_id(), 9);
        let oos = Reply::OutOfSpace {
            req_id: 11,
            needed: 1,
            free: 0,
            largest_extent: 0,
        };
        assert_eq!(oos.req_id(), 11);
        let throttled = Reply::Throttled {
            req_id: 13,
            retry_after_ns: 1_000_000,
        };
        assert_eq!(throttled.req_id(), 13);
    }

    #[test]
    fn request_req_id_extraction() {
        assert_eq!(Request::List { req_id: 5 }.req_id(), Some(5));
        assert_eq!(
            Request::Checkpoint {
                req_id: 6,
                model: "m".into()
            }
            .req_id(),
            Some(6)
        );
        assert_eq!(Request::Disconnect.req_id(), None);
    }
}
