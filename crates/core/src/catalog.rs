//! The million-model catalog: a paged on-PMem name index with a
//! learned root (ROADMAP item 3).
//!
//! The paper-scale daemon mirrors the whole ModelTable into a DRAM
//! red-black tree ([`crate::ModelMap`]) and scans the fixed table
//! linearly — fine for dozens of models, hopeless for a fleet serving
//! millions. The catalog replaces both with an AirIndex-style two-level
//! structure kept entirely on PMem behind the shared allocator:
//!
//! * **Micro-pages** (`portus_pmem::micropage`) — sorted, variable-
//!   length `name → MIndex-offset` runs packed into ~4 KiB immutable
//!   pages. Mutations copy-on-write a fresh page; a page is only ever
//!   referenced after it is fully persisted.
//! * **Root block** — a directory of 16-byte `{derived_key, page_off}`
//!   records (one per page, sorted) plus a piecewise-linear model
//!   trained over the derived keys at seal time. The superblock's
//!   `SUPER_CAT_OFF` word points at the current root, so the whole
//!   structure is reachable from media alone.
//!
//! A lookup is: predict the directory position from the in-DRAM model
//! (a few hundred bytes of segments), DAX-read the predicted
//! `2·error+1` window of 16-byte records, then probe exactly one page —
//! `O(1)`-ish DAX traffic regardless of model count, with a full
//! binary search over the on-PMem directory as the always-correct
//! fallback when the model is stale. DRAM usage is the segment table
//! plus a CLOCK page cache clamped to [`CatalogConfig::cache_pages`]
//! decoded pages — never `O(models)`.
//!
//! **Concurrency.** Mutations serialize on one internal mutex, but
//! lookups do *not* hold it across PMem reads: a lookup snapshots the
//! root mirror (root offset, directory size, shared prefix, `Arc`'d
//! segments) plus a generation counter under the lock, performs the
//! window read and page probe lock-free, then re-checks the generation
//! before trusting (or caching) what it read. Every mutation bumps the
//! generation while holding the mutex, so a lookup that raced a
//! split/free simply retries; concurrent lookups across tenants never
//! serialize on each other.
//!
//! **Derived keys.** The directory orders pages by an 8-byte key
//! derived from each page's first name: strip the longest common
//! prefix of the whole key population, then take the next 8 bytes
//! big-endian (zero-padded). The map is monotone (non-strict) with
//! lexicographic order, so equal derived keys — names agreeing for 8
//! bytes past the shared prefix — are resolved by string-comparing the
//! candidate pages' first names. Inserting a name that breaks the
//! stored prefix re-derives every directory key (page payloads are
//! untouched — they store full names) and publishes a fresh root. The
//! stored prefix is always clamped to a UTF-8 character boundary so it
//! stays a valid string; key derivation itself is pure byte
//! arithmetic, so multibyte names sort exactly like their bytes.
//!
//! **Crash consistency.** Same discipline as the extent store (PR 9):
//! every mutation persists its new pages (and, when the page count
//! changes, a complete new root) *before* one atomic flip — a 16-byte
//! directory-record update inside one cache line for in-place
//! copy-on-write (the root layout keeps directory records 16-aligned,
//! see [`SEG_SIZE`]), or the 8-byte superblock root pointer for
//! splits/rebuilds. A crash on either side of the flip leaves only
//! unreachable allocations, which [`crate::Index::recover`] reclaims by
//! offset reachability; it also reconciles the surviving pages against
//! the live ModelTable entries, covering the windows between a table
//! publish/retire and the corresponding catalog update.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use portus_pmem::{micropage, typed, PmemAlloc, PmemAllocator, PmemDevice};

use crate::{PortusError, PortusResult};

/// Root-block magic ("CRTL").
const ROOT_MAGIC: u32 = 0x4352_544C;
/// Root header: magic, version, dir_count, seg_count, page_bytes, pad.
const ROOT_LCP: u64 = 24;
/// Segments start here; the LCP string (u16-prefixed, ≤ 254 bytes)
/// fits between the header and this boundary.
const ROOT_SEG0: u64 = 320;
/// One persisted model segment: `{first_key, first_idx, slope_bits,
/// pad}`. Padded from 24 to 32 bytes so the directory base
/// (`ROOT_SEG0 + n·SEG_SIZE`) is 16-aligned for *any* segment count —
/// root blocks are 64-aligned, so every 16-byte directory record then
/// sits entirely inside one 64-byte cache line and the in-place record
/// flip ([`Catalog::update_dir_rec`]) really is a single-line commit
/// point. (At 24 an odd segment count left records only 8-aligned,
/// letting a record straddle two lines and tear on a crash.)
const SEG_SIZE: u64 = 32;
/// One directory record: `{derived_key, page_off}`.
const DIR_REC: u64 = 16;

/// Allocator tag for catalog root blocks.
pub(crate) const CATALOG_ROOT_TAG: u64 = 0x4341_5452_4F4F_5431; // "CATROOT1"
/// Allocator tag for catalog micro-pages.
pub(crate) const CATALOG_PAGE_TAG: u64 = 0x4341_5450_4147_4531; // "CATPAGE1"

/// Configuration of the learned catalog
/// ([`crate::DaemonConfig::catalog`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogConfig {
    /// Micro-page size in bytes. Persisted in the root block, so a
    /// recovered catalog keeps the size it was formatted with.
    pub page_bytes: u64,
    /// DRAM page-cache clamp: at most this many decoded pages are held
    /// in memory (CLOCK eviction). `0` disables caching entirely.
    pub cache_pages: usize,
    /// Learned-model error bound: a prediction is trusted to land
    /// within ± this many directory records. Smaller means more
    /// segments, larger means wider probe windows.
    pub model_error: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            page_bytes: 4096,
            cache_pages: 64,
            model_error: 8,
        }
    }
}

/// One segment of the piecewise-linear root model, fitted over
/// `(derived_key, directory_index)` points with a shrinking-cone pass.
#[derive(Debug, Clone, Copy)]
struct Segment {
    first_key: u64,
    first_idx: u64,
    slope: f64,
}

/// Observability counters ([`Catalog::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Micro-pages currently published under the root.
    pub pages: u64,
    /// Model entries across those pages.
    pub entries: u64,
    /// Lookups whose page probe hit the DRAM cache.
    pub cache_hits: u64,
    /// Lookups that decoded their page from PMem.
    pub cache_misses: u64,
    /// Decoded pages currently cached.
    pub cached_pages: u64,
    /// Approximate DRAM bytes those cached pages occupy.
    pub cache_bytes: u64,
    /// Segments in the in-DRAM learned model.
    pub model_segments: u64,
    /// Lookups whose predicted window missed, falling back to a full
    /// directory binary search (always correct, just slower).
    pub model_fallbacks: u64,
}

/// One decoded page held by the CLOCK cache.
struct CacheSlot {
    page_off: u64,
    entries: Arc<Vec<(String, u64)>>,
    bytes: u64,
    referenced: bool,
    live: bool,
}

/// Clamped CLOCK cache of decoded pages.
struct PageCache {
    cap: usize,
    slots: Vec<CacheSlot>,
    by_off: HashMap<u64, usize>,
    hand: usize,
}

impl PageCache {
    fn new(cap: usize) -> PageCache {
        PageCache {
            cap,
            slots: Vec::new(),
            by_off: HashMap::new(),
            hand: 0,
        }
    }

    fn get(&mut self, page_off: u64) -> Option<Arc<Vec<(String, u64)>>> {
        let &i = self.by_off.get(&page_off)?;
        self.slots[i].referenced = true;
        Some(self.slots[i].entries.clone())
    }

    fn put(&mut self, page_off: u64, entries: Arc<Vec<(String, u64)>>) {
        if self.cap == 0 || self.by_off.contains_key(&page_off) {
            return;
        }
        let bytes = 64
            + entries
                .iter()
                .map(|(n, _)| n.len() as u64 + 40)
                .sum::<u64>();
        let slot = CacheSlot {
            page_off,
            entries,
            bytes,
            referenced: true,
            live: true,
        };
        if let Some(i) = self.slots.iter().position(|s| !s.live) {
            self.slots[i] = slot;
            self.by_off.insert(page_off, i);
        } else if self.slots.len() < self.cap {
            self.slots.push(slot);
            self.by_off.insert(page_off, self.slots.len() - 1);
        } else {
            // CLOCK: sweep until an unreferenced victim comes around.
            loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.cap;
                if self.slots[i].referenced {
                    self.slots[i].referenced = false;
                } else {
                    self.by_off.remove(&self.slots[i].page_off);
                    self.by_off.insert(page_off, i);
                    self.slots[i] = slot;
                    break;
                }
            }
        }
    }

    fn invalidate(&mut self, page_off: u64) {
        if let Some(i) = self.by_off.remove(&page_off) {
            self.slots[i].live = false;
            self.slots[i].referenced = false;
            self.slots[i].entries = Arc::new(Vec::new());
            self.slots[i].bytes = 0;
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.by_off.clear();
        self.hand = 0;
    }

    fn resize(&mut self, cap: usize) {
        if cap < self.slots.len() {
            self.clear();
        }
        self.cap = cap;
    }

    fn cached_pages(&self) -> u64 {
        self.by_off.len() as u64
    }

    fn bytes(&self) -> u64 {
        self.slots.iter().filter(|s| s.live).map(|s| s.bytes).sum()
    }
}

/// Mutable catalog state behind one mutex: the current root's DRAM
/// mirror (pointer, directory size, shared prefix, trained segments —
/// everything *except* the directory itself, which stays on PMem), the
/// clamped page cache, the allocator handles of the catalog's own live
/// regions (so frees are O(1), not an allocator-table scan), and a
/// generation counter that invalidates in-flight lock-free lookups.
struct CatInner {
    gen: u64,
    root_off: u64,
    dir_count: u64,
    entries: u64,
    lcp: Arc<str>,
    segs: Arc<Vec<Segment>>,
    model_error: u64,
    cache: PageCache,
    /// offset → allocation handle for every root/page this process
    /// allocated (or adopted from a scan after recovery).
    handles: HashMap<u64, PmemAlloc>,
}

/// An immutable snapshot of the root mirror, taken under the mutex and
/// then used for lock-free PMem reads. `gen` ties it to the mutation
/// epoch it was taken in.
#[derive(Clone)]
struct RootSnap {
    gen: u64,
    root_off: u64,
    dir_count: u64,
    lcp: Arc<str>,
    segs: Arc<Vec<Segment>>,
    model_error: u64,
}

/// The learned, micro-paged on-PMem model catalog.
///
/// All methods are `&self`; an internal mutex serialises mutations and
/// cache movement, while [`Catalog::lookup`] runs its PMem reads
/// outside the lock against a generation-validated snapshot. Methods
/// that allocate or free pages take the shared [`PmemAllocator`]
/// explicitly (the extent-store idiom), so the catalog itself never
/// owns allocator state.
pub struct Catalog {
    dev: Arc<PmemDevice>,
    /// Device offset of the 8-byte word that names the current root
    /// (the superblock's `SUPER_CAT_OFF` word). Flipping it *is* the
    /// commit point for splits and rebuilds.
    root_ptr_at: u64,
    page_bytes: u64,
    inner: Mutex<CatInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Catalog")
            .field("root_off", &inner.root_off)
            .field("pages", &inner.dir_count)
            .field("entries", &inner.entries)
            .field("segments", &inner.segs.len())
            .finish()
    }
}

/// The longest common prefix of `a` and `b`, clamped back to a UTF-8
/// character boundary of `a` (the shared bytes are identical in both,
/// so the clamp is a boundary of `b` too). Slicing a `&str` at a raw
/// byte count would panic inside a multibyte character — e.g. "modelα"
/// vs "modelβ" share 6 bytes, one byte into 'α'.
fn common_prefix<'a>(a: &'a str, b: &str) -> &'a str {
    let mut p = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    while !a.is_char_boundary(p) {
        p -= 1;
    }
    &a[..p]
}

/// Length of the longest common *byte* prefix of `a` and `b`. Only for
/// byte-level arithmetic ([`derive_key`]) — never slice a `&str` with
/// this, it can land inside a multibyte character.
fn common_prefix_len(a: &str, b: &str) -> usize {
    a.as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count()
}

/// The 8-byte big-endian derived key of `name` under the shared prefix
/// `lcp`. Monotone (non-strict) with lexicographic order over *all*
/// strings: names below the prefix range map to 0, above it to
/// `u64::MAX`, and prefix-sharing names to their next 8 bytes.
fn derive_key(lcp: &str, name: &str) -> u64 {
    let p = common_prefix_len(lcp, name);
    if p < lcp.len() {
        let nb = name.as_bytes();
        return if p >= nb.len() || nb[p] < lcp.as_bytes()[p] {
            0
        } else {
            u64::MAX
        };
    }
    let tail = &name.as_bytes()[lcp.len()..];
    let mut key = [0u8; 8];
    let n = tail.len().min(8);
    key[..n].copy_from_slice(&tail[..n]);
    u64::from_be_bytes(key)
}

/// Fits a shrinking-cone piecewise-linear model over the sorted
/// `keys`, guaranteeing every training point is predicted within
/// ± `eps` directory slots. Duplicate keys longer than the error bound
/// force a segment break; predictions there lean on the lookup-time
/// binary-search fallback.
fn train_segments(keys: &[u64], eps: u64) -> Vec<Segment> {
    let mut segs: Vec<Segment> = Vec::new();
    if keys.is_empty() {
        return segs;
    }
    let eps = eps.max(1) as f64;
    let mut start = 0usize;
    let (mut lo_slope, mut hi_slope) = (0.0f64, f64::INFINITY);
    for i in 1..keys.len() {
        let dx = (keys[i] - keys[start]) as f64;
        let dy = (i - start) as f64;
        let (cand_lo, cand_hi) = if dx == 0.0 {
            // Duplicate derived key: representable only while the run
            // stays inside the error bound.
            if dy <= eps {
                continue;
            }
            (f64::INFINITY, 0.0) // forces a break below
        } else {
            ((dy - eps) / dx, (dy + eps) / dx)
        };
        let new_lo = lo_slope.max(cand_lo.max(0.0));
        let new_hi = hi_slope.min(cand_hi);
        if new_lo > new_hi {
            segs.push(Segment {
                first_key: keys[start],
                first_idx: start as u64,
                slope: (lo_slope + hi_slope.min(1e18)) / 2.0,
            });
            start = i;
            lo_slope = 0.0;
            hi_slope = f64::INFINITY;
        } else {
            lo_slope = new_lo;
            hi_slope = new_hi;
        }
    }
    segs.push(Segment {
        first_key: keys[start],
        first_idx: start as u64,
        slope: (lo_slope + hi_slope.min(1e18)) / 2.0,
    });
    segs
}

impl Catalog {
    // ---- construction ----------------------------------------------

    /// Formats an empty catalog: writes a zero-page root block and
    /// publishes it at `root_ptr_at` (the superblock catalog word).
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub(crate) fn format(
        dev: Arc<PmemDevice>,
        alloc: &PmemAllocator,
        root_ptr_at: u64,
        cfg: &CatalogConfig,
    ) -> PortusResult<Catalog> {
        let cat = Catalog {
            dev,
            root_ptr_at,
            page_bytes: cfg.page_bytes.max(256),
            inner: Mutex::new(CatInner {
                gen: 0,
                root_off: 0,
                dir_count: 0,
                entries: 0,
                lcp: Arc::from(""),
                segs: Arc::new(Vec::new()),
                model_error: cfg.model_error.max(1),
                cache: PageCache::new(cfg.cache_pages),
                handles: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        };
        {
            let mut inner = cat.inner.lock();
            let root = cat.write_root(alloc, &mut inner, "", &[], &[])?;
            cat.flip_root(alloc, &mut inner, root, &[])?;
        }
        Ok(cat)
    }

    /// Mounts the catalog already published at `root_ptr_at`,
    /// rebuilding the DRAM mirror (shared prefix, segments, entry
    /// count) from the persisted root and page headers. `page_bytes`
    /// comes from the root block, not from `cfg`.
    ///
    /// Allocator handles for the recovered regions are not known yet;
    /// the first free after a recover seeds them with one allocator
    /// scan ([`Catalog::free_offsets`]), O(1) from then on.
    ///
    /// # Errors
    ///
    /// [`PortusError::Daemon`] on a bad root magic; device errors.
    pub(crate) fn recover(
        dev: Arc<PmemDevice>,
        root_ptr_at: u64,
        cfg: &CatalogConfig,
    ) -> PortusResult<Catalog> {
        let root_off = typed::read_u64(&dev, root_ptr_at)?;
        if typed::read_u32(&dev, root_off)? != ROOT_MAGIC {
            return Err(PortusError::Daemon(format!(
                "bad catalog root magic at {root_off:#x}"
            )));
        }
        let dir_count = u64::from(typed::read_u32(&dev, root_off + 8)?);
        let seg_count = typed::read_u32(&dev, root_off + 12)?;
        let page_bytes = u64::from(typed::read_u32(&dev, root_off + 16)?).max(256);
        let (lcp, _) = typed::read_str(&dev, root_off + ROOT_LCP)?;
        let mut segs = Vec::with_capacity(seg_count as usize);
        for i in 0..u64::from(seg_count) {
            let s = root_off + ROOT_SEG0 + i * SEG_SIZE;
            segs.push(Segment {
                first_key: typed::read_u64(&dev, s)?,
                first_idx: typed::read_u64(&dev, s + 8)?,
                slope: f64::from_bits(typed::read_u64(&dev, s + 16)?),
            });
        }
        let cat = Catalog {
            dev,
            root_ptr_at,
            page_bytes,
            inner: Mutex::new(CatInner {
                gen: 0,
                root_off,
                dir_count,
                entries: 0,
                lcp: Arc::from(lcp.as_str()),
                segs: Arc::new(segs),
                model_error: cfg.model_error.max(1),
                cache: PageCache::new(cfg.cache_pages),
                handles: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        };
        {
            // The entry count is never persisted (it would go stale in
            // every copy-on-write window): re-derive it from the page
            // headers, which is also an integrity pass over the magics.
            let mut inner = cat.inner.lock();
            let snap = Self::snap_of(&inner);
            let mut entries = 0u64;
            for i in 0..dir_count {
                let (_, page_off) = cat.read_dir_rec(&snap, i)?;
                let (count, _) = micropage::read_page_header(&cat.dev, page_off)?;
                entries += u64::from(count);
            }
            inner.entries = entries;
        }
        Ok(cat)
    }

    /// Applies the runtime knobs of `cfg` (cache clamp, error bound) to
    /// an already-mounted catalog; `page_bytes` stays as formatted.
    pub(crate) fn set_runtime(&self, cfg: &CatalogConfig) {
        let mut inner = self.inner.lock();
        inner.model_error = cfg.model_error.max(1);
        inner.cache.resize(cfg.cache_pages);
    }

    /// Snapshot of the root mirror for lock-free reads.
    fn snap_of(inner: &CatInner) -> RootSnap {
        RootSnap {
            gen: inner.gen,
            root_off: inner.root_off,
            dir_count: inner.dir_count,
            lcp: inner.lcp.clone(),
            segs: inner.segs.clone(),
            model_error: inner.model_error,
        }
    }

    /// `true` when a mutation has committed since `snap` was taken, in
    /// which case whatever a lock-free lookup read may reference freed
    /// pages and must be retried.
    fn stale(&self, snap: &RootSnap) -> bool {
        self.inner.lock().gen != snap.gen
    }

    // ---- reads ------------------------------------------------------

    /// Looks up the MIndex offset of `name`: model-predict → bounded
    /// directory window read → one page probe → in-page binary search.
    ///
    /// The mutex is held only to take the root snapshot and to touch
    /// the page cache — never across the PMem reads — so concurrent
    /// lookups proceed in parallel. A lookup that raced a mutation
    /// (generation mismatch) retries against the new root.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn lookup(&self, name: &str) -> PortusResult<Option<u64>> {
        loop {
            let snap = {
                let inner = self.inner.lock();
                if inner.dir_count == 0 {
                    return Ok(None);
                }
                Self::snap_of(&inner)
            };
            let derived = derive_key(&snap.lcp, name);
            // All PMem reads happen outside the lock; a concurrent
            // mutation may free what we are reading, so any error or
            // result is only trusted if the generation held.
            let page_off = match self
                .locate_page(&snap, derived, name)
                .and_then(|idx| self.read_dir_rec(&snap, idx))
            {
                Ok((_, off)) => off,
                Err(e) => {
                    if self.stale(&snap) {
                        continue;
                    }
                    return Err(e);
                }
            };
            let entries = {
                let mut inner = self.inner.lock();
                if inner.gen != snap.gen {
                    continue;
                }
                inner.cache.get(page_off)
            };
            let entries = match entries {
                Some(hit) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    hit
                }
                None => {
                    let decoded = match micropage::read_page(&self.dev, page_off) {
                        Ok(d) => Arc::new(d),
                        Err(e) => {
                            if self.stale(&snap) {
                                continue;
                            }
                            return Err(e.into());
                        }
                    };
                    let mut inner = self.inner.lock();
                    if inner.gen != snap.gen {
                        continue;
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    inner.cache.put(page_off, decoded.clone());
                    decoded
                }
            };
            if self.stale(&snap) {
                continue;
            }
            return Ok(entries
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
                .ok()
                .map(|i| entries[i].1));
        }
    }

    /// Number of model entries.
    pub fn len(&self) -> u64 {
        self.inner.lock().entries
    }

    /// `true` when no models are catalogued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every `(name, offset)` entry in ascending name order. A full
    /// scan — control-plane only (listings, recovery reconcile).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn scan(&self) -> PortusResult<Vec<(String, u64)>> {
        let inner = self.inner.lock();
        let snap = Self::snap_of(&inner);
        let mut out = Vec::with_capacity(inner.entries as usize);
        for i in 0..snap.dir_count {
            let (_, page_off) = self.read_dir_rec(&snap, i)?;
            out.extend(micropage::read_page(&self.dev, page_off)?);
        }
        Ok(out)
    }

    /// Device offsets of every published micro-page (directory order).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn page_offsets(&self) -> PortusResult<Vec<u64>> {
        let inner = self.inner.lock();
        let snap = Self::snap_of(&inner);
        (0..snap.dir_count)
            .map(|i| self.read_dir_rec(&snap, i).map(|(_, off)| off))
            .collect()
    }

    /// The current root block's device offset.
    pub fn root_offset(&self) -> u64 {
        self.inner.lock().root_off
    }

    /// Observability counters.
    pub fn stats(&self) -> CatalogStats {
        let inner = self.inner.lock();
        CatalogStats {
            pages: inner.dir_count,
            entries: inner.entries,
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cached_pages: inner.cache.cached_pages(),
            cache_bytes: inner.cache.bytes(),
            model_segments: inner.segs.len() as u64,
            model_fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    // ---- mutations --------------------------------------------------

    /// Inserts (or updates) `name → off`. Returns the previous offset
    /// if the name was already catalogued.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn insert(&self, alloc: &PmemAllocator, name: &str, off: u64) -> PortusResult<Option<u64>> {
        let mut inner = self.inner.lock();
        inner.gen = inner.gen.wrapping_add(1);
        // A name outside the stored shared prefix invalidates every
        // derived key: shrink the prefix and republish the directory
        // (page payloads carry full names and are untouched).
        if inner.entries > 0 {
            let pfx = common_prefix(&inner.lcp, name);
            if pfx.len() < inner.lcp.len() {
                let new_lcp: Arc<str> = Arc::from(pfx);
                self.rekey(alloc, &mut inner, new_lcp)?;
            }
        } else {
            // First entry: the prefix is the whole population, i.e. it.
            inner.lcp = Arc::from(name);
        }
        if inner.dir_count == 0 {
            let one = vec![(name.to_string(), off)];
            let page = self.write_pages(alloc, &mut inner, &one)?;
            let keys = vec![derive_key(&inner.lcp, name)];
            let dir: Vec<(u64, u64)> = vec![(keys[0], page[0])];
            let segs = train_segments(&keys, inner.model_error);
            let lcp = inner.lcp.clone();
            let root = self.write_root(alloc, &mut inner, &lcp, &segs, &dir)?;
            self.flip_root(alloc, &mut inner, root, &[])?;
            inner.dir_count = 1;
            inner.entries = 1;
            inner.segs = Arc::new(segs);
            return Ok(None);
        }
        let snap = Self::snap_of(&inner);
        let idx = self.locate_page(&snap, derive_key(&snap.lcp, name), name)?;
        let (_, old_page) = self.read_dir_rec(&snap, idx)?;
        let mut entries: Vec<(String, u64)> = self.page(&mut inner, old_page)?.as_ref().clone();
        let prev = match entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => Some(std::mem::replace(&mut entries[i].1, off)),
            Err(i) => {
                entries.insert(i, (name.to_string(), off));
                None
            }
        };
        let fits = micropage::PAGE_HEADER
            + entries
                .iter()
                .map(|(n, _)| micropage::entry_encoded_len(n))
                .sum::<u64>()
            <= self.page_bytes;
        if fits {
            let pages = self.write_pages(alloc, &mut inner, &entries)?;
            let key = derive_key(&snap.lcp, &entries[0].0);
            self.update_dir_rec(&snap, idx, key, pages[0])?;
            inner.cache.invalidate(old_page);
            self.free_offsets(alloc, &mut inner, &[old_page])?;
        } else {
            // Split: both halves (and a complete new root) are durable
            // before the root-pointer flip commits them.
            let pages = self.write_pages(alloc, &mut inner, &entries)?;
            let mut dir = self.read_dir(&snap)?;
            let mut new_recs = Vec::with_capacity(pages.len());
            let mut cursor = 0usize;
            for &p in &pages {
                let (count, _) = micropage::read_page_header(&self.dev, p)?;
                new_recs.push((derive_key(&snap.lcp, &entries[cursor].0), p));
                cursor += count as usize;
            }
            dir.splice(idx as usize..=idx as usize, new_recs);
            let keys: Vec<u64> = dir.iter().map(|(k, _)| *k).collect();
            let segs = train_segments(&keys, inner.model_error);
            let lcp = inner.lcp.clone();
            let root = self.write_root(alloc, &mut inner, &lcp, &segs, &dir)?;
            self.flip_root(alloc, &mut inner, root, &[old_page])?;
            inner.dir_count = dir.len() as u64;
            inner.segs = Arc::new(segs);
        }
        if prev.is_none() {
            inner.entries += 1;
        }
        Ok(prev)
    }

    /// Removes `name`, returning its offset if it was catalogued.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn remove(&self, alloc: &PmemAllocator, name: &str) -> PortusResult<Option<u64>> {
        let mut inner = self.inner.lock();
        if inner.dir_count == 0 {
            return Ok(None);
        }
        inner.gen = inner.gen.wrapping_add(1);
        let snap = Self::snap_of(&inner);
        let idx = self.locate_page(&snap, derive_key(&snap.lcp, name), name)?;
        let (_, old_page) = self.read_dir_rec(&snap, idx)?;
        let mut entries: Vec<(String, u64)> = self.page(&mut inner, old_page)?.as_ref().clone();
        let Ok(i) = entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) else {
            return Ok(None);
        };
        let (_, prev) = entries.remove(i);
        if entries.is_empty() {
            // The page dies: publish a root without its record.
            let mut dir = self.read_dir(&snap)?;
            dir.remove(idx as usize);
            let keys: Vec<u64> = dir.iter().map(|(k, _)| *k).collect();
            let segs = train_segments(&keys, inner.model_error);
            let lcp = inner.lcp.clone();
            let root = self.write_root(alloc, &mut inner, &lcp, &segs, &dir)?;
            self.flip_root(alloc, &mut inner, root, &[old_page])?;
            inner.dir_count = dir.len() as u64;
            inner.segs = Arc::new(segs);
        } else {
            let pages = self.write_pages(alloc, &mut inner, &entries)?;
            let key = derive_key(&snap.lcp, &entries[0].0);
            self.update_dir_rec(&snap, idx, key, pages[0])?;
            inner.cache.invalidate(old_page);
            self.free_offsets(alloc, &mut inner, &[old_page])?;
        }
        inner.entries -= 1;
        Ok(Some(prev))
    }

    /// Replaces the whole catalog with `entries` in one publish: pack
    /// pages, train the model, write a fresh root, flip the root
    /// pointer, then free every superseded page. The `O(n)` build path
    /// — daemon seeding and recovery reconciliation use it instead of
    /// n incremental inserts.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn bulk_replace(
        &self,
        alloc: &PmemAllocator,
        entries: &[(String, u64)],
    ) -> PortusResult<()> {
        let mut sorted: Vec<(String, u64)> = entries.to_vec();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        sorted.dedup_by(|a, b| a.0 == b.0);
        let mut inner = self.inner.lock();
        inner.gen = inner.gen.wrapping_add(1);
        let snap = Self::snap_of(&inner);
        let old_pages = (0..snap.dir_count)
            .map(|i| self.read_dir_rec(&snap, i).map(|(_, off)| off))
            .collect::<PortusResult<Vec<u64>>>()?;
        let lcp: Arc<str> = match (sorted.first(), sorted.last()) {
            (Some(a), Some(b)) => Arc::from(common_prefix(&a.0, &b.0)),
            _ => Arc::from(""),
        };
        let pages = self.write_pages(alloc, &mut inner, &sorted)?;
        let mut dir = Vec::with_capacity(pages.len());
        let mut cursor = 0usize;
        for &p in &pages {
            let (count, _) = micropage::read_page_header(&self.dev, p)?;
            dir.push((derive_key(&lcp, &sorted[cursor].0), p));
            cursor += count as usize;
        }
        let keys: Vec<u64> = dir.iter().map(|(k, _)| *k).collect();
        let segs = train_segments(&keys, inner.model_error);
        let root = self.write_root(alloc, &mut inner, &lcp, &segs, &dir)?;
        inner.cache.clear();
        self.flip_root(alloc, &mut inner, root, &old_pages)?;
        inner.dir_count = dir.len() as u64;
        inner.entries = sorted.len() as u64;
        inner.lcp = lcp;
        inner.segs = Arc::new(segs);
        Ok(())
    }

    /// Reconciles the catalog against the authoritative ModelTable
    /// view (`live`, name → MIndex offset): entries the table lacks are
    /// dropped, entries the catalog lacks (or maps elsewhere) are
    /// adopted. Covers the crash windows between a table publish or
    /// retire and the matching catalog update. Returns how many entries
    /// diverged.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn reconcile(&self, alloc: &PmemAllocator, live: &[(String, u64)]) -> PortusResult<u64> {
        let current = self.scan()?;
        let mut want: Vec<(String, u64)> = live.to_vec();
        want.sort_by(|a, b| a.0.cmp(&b.0));
        want.dedup_by(|a, b| a.0 == b.0);
        if current == want {
            return Ok(0);
        }
        let cur_map: HashMap<&str, u64> = current.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let want_map: HashMap<&str, u64> = want.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let mut diverged = 0u64;
        for (k, v) in &want {
            if cur_map.get(k.as_str()) != Some(v) {
                diverged += 1; // table-only, or remapped, entry
            }
        }
        for (k, _) in &current {
            if !want_map.contains_key(k.as_str()) {
                diverged += 1; // catalog-only entry (stale)
            }
        }
        self.bulk_replace(alloc, &want)?;
        Ok(diverged)
    }

    // ---- internals --------------------------------------------------

    /// Reads directory record `i` of the snapshot's root.
    fn read_dir_rec(&self, snap: &RootSnap, i: u64) -> PortusResult<(u64, u64)> {
        let base = self.dir_base(snap) + i * DIR_REC;
        Ok((
            typed::read_u64(&self.dev, base)?,
            typed::read_u64(&self.dev, base + 8)?,
        ))
    }

    /// Reads the full on-PMem directory into DRAM (mutation paths).
    fn read_dir(&self, snap: &RootSnap) -> PortusResult<Vec<(u64, u64)>> {
        (0..snap.dir_count)
            .map(|i| self.read_dir_rec(snap, i))
            .collect()
    }

    fn dir_base(&self, snap: &RootSnap) -> u64 {
        snap.root_off + ROOT_SEG0 + snap.segs.len() as u64 * SEG_SIZE
    }

    /// Atomically repoints directory record `i` at a freshly persisted
    /// page: both words of the 16-byte record share one cache line
    /// (`ROOT_SEG0` and `SEG_SIZE` are multiples of 16 and root blocks
    /// are 64-aligned, so records are 16-aligned and never straddle a
    /// 64-byte line — asserted in [`Catalog::write_root`]), so the
    /// single persist flips key and pointer together.
    fn update_dir_rec(
        &self,
        snap: &RootSnap,
        i: u64,
        key: u64,
        page_off: u64,
    ) -> PortusResult<()> {
        let base = self.dir_base(snap) + i * DIR_REC;
        debug_assert_eq!(base % DIR_REC, 0);
        typed::write_u64(&self.dev, base, key)?;
        typed::write_u64(&self.dev, base + 8, page_off)?;
        self.dev.persist(base, DIR_REC)?;
        Ok(())
    }

    /// Finds the directory index of the page that covers `name`:
    /// model-predict, read the bounded window, fall back to a full
    /// binary search when the window does not bracket, then resolve
    /// derived-key ties by comparing page first names.
    fn locate_page(&self, snap: &RootSnap, derived: u64, name: &str) -> PortusResult<u64> {
        debug_assert!(snap.dir_count > 0);
        let n = snap.dir_count;
        let eps = snap.model_error;
        // Predict a directory position from the in-DRAM segments.
        let (lo, hi) = match snap.segs.binary_search_by(|s| s.first_key.cmp(&derived)) {
            Err(0) => (0, eps.min(n - 1)),
            Ok(mut s) | Err(mut s) => {
                if snap.segs.get(s).map(|g| g.first_key) != Some(derived) {
                    s -= 1;
                }
                let seg = snap.segs[s];
                let pos = seg.first_idx as f64 + seg.slope * (derived - seg.first_key) as f64;
                let pos = (pos.round().max(0.0) as u64).min(n - 1);
                (pos.saturating_sub(eps), (pos + eps).min(n - 1))
            }
        };
        // One DAX read covers the whole window.
        let window = self.read_dir_range(snap, lo, hi)?;
        let idx = if !window.is_empty()
            && (window[0].0 <= derived || lo == 0)
            && (window[window.len() - 1].0 > derived || hi == n - 1)
        {
            let part = window.partition_point(|(k, _)| *k <= derived);
            lo + (part as u64).saturating_sub(1).min(window.len() as u64 - 1)
        } else {
            // Model miss: binary-search the on-PMem directory, one
            // 16-byte record per probe.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            let (mut a, mut b) = (0u64, n);
            while a < b {
                let mid = (a + b) / 2;
                let (k, _) = self.read_dir_rec(snap, mid)?;
                if k <= derived {
                    a = mid + 1;
                } else {
                    b = mid;
                }
            }
            a.saturating_sub(1)
        };
        // Equal derived keys (names agreeing 8 bytes past the shared
        // prefix) span several records; the string order of the pages'
        // first names decides. Walk back through the tie run.
        let mut idx = idx;
        loop {
            let (k, page_off) = self.read_dir_rec(snap, idx)?;
            if k < derived || idx == 0 {
                break;
            }
            let first = micropage::read_first_key(&self.dev, page_off)?;
            match first {
                Some(f) if f.as_str() <= name => break,
                _ => idx -= 1,
            }
        }
        Ok(idx)
    }

    /// Reads directory records `lo..=hi` in one device read.
    fn read_dir_range(&self, snap: &RootSnap, lo: u64, hi: u64) -> PortusResult<Vec<(u64, u64)>> {
        let count = (hi + 1 - lo) as usize;
        let mut buf = vec![0u8; count * DIR_REC as usize];
        self.dev
            .read(self.dir_base(snap) + lo * DIR_REC, &mut buf)?;
        Ok(buf
            .chunks_exact(DIR_REC as usize)
            .map(|c| {
                (
                    u64::from_le_bytes(c[..8].try_into().unwrap()),
                    u64::from_le_bytes(c[8..].try_into().unwrap()),
                )
            })
            .collect())
    }

    /// The decoded page at `page_off`, via the clamped CLOCK cache.
    fn page(&self, inner: &mut CatInner, page_off: u64) -> PortusResult<Arc<Vec<(String, u64)>>> {
        if let Some(hit) = inner.cache.get(page_off) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entries = Arc::new(micropage::read_page(&self.dev, page_off)?);
        inner.cache.put(page_off, entries.clone());
        Ok(entries)
    }

    /// Packs `entries` into fresh micro-pages, each written and
    /// persisted before anything references it. Returns page offsets;
    /// the allocation handles are retained for O(1) frees.
    fn write_pages(
        &self,
        alloc: &PmemAllocator,
        inner: &mut CatInner,
        entries: &[(String, u64)],
    ) -> PortusResult<Vec<u64>> {
        let mut offs = Vec::new();
        for chunk in micropage::pack_pages(entries, self.page_bytes) {
            let region = alloc.alloc_aligned(self.page_bytes, 64, CATALOG_PAGE_TAG)?;
            micropage::write_page(&self.dev, region.offset, self.page_bytes, chunk)?;
            self.dev.persist(region.offset, self.page_bytes)?;
            inner.handles.insert(region.offset, region);
            offs.push(region.offset);
        }
        Ok(offs)
    }

    /// Writes and persists a complete root block (header, shared
    /// prefix, segments, directory). Not yet published — the caller
    /// flips the root pointer. The allocation handle is retained for an
    /// O(1) free when the root is superseded.
    fn write_root(
        &self,
        alloc: &PmemAllocator,
        inner: &mut CatInner,
        lcp: &str,
        segs: &[Segment],
        dir: &[(u64, u64)],
    ) -> PortusResult<u64> {
        let size = ROOT_SEG0 + segs.len() as u64 * SEG_SIZE + dir.len() as u64 * DIR_REC;
        let region = alloc.alloc_aligned(size.max(64), 64, CATALOG_ROOT_TAG)?;
        let off = region.offset;
        inner.handles.insert(off, region);
        typed::write_u32(&self.dev, off, ROOT_MAGIC)?;
        typed::write_u32(&self.dev, off + 4, 1)?;
        typed::write_u32(&self.dev, off + 8, dir.len() as u32)?;
        typed::write_u32(&self.dev, off + 12, segs.len() as u32)?;
        typed::write_u32(&self.dev, off + 16, self.page_bytes as u32)?;
        typed::write_u32(&self.dev, off + 20, 0)?;
        typed::write_str(&self.dev, off + ROOT_LCP, lcp)?;
        for (i, s) in segs.iter().enumerate() {
            let at = off + ROOT_SEG0 + i as u64 * SEG_SIZE;
            typed::write_u64(&self.dev, at, s.first_key)?;
            typed::write_u64(&self.dev, at + 8, s.first_idx)?;
            typed::write_u64(&self.dev, at + 16, s.slope.to_bits())?;
            typed::write_u64(&self.dev, at + 24, 0)?;
        }
        let dir0 = off + ROOT_SEG0 + segs.len() as u64 * SEG_SIZE;
        // The in-place record flip (update_dir_rec) is only a single-
        // cache-line commit point if no record straddles a 64-byte
        // boundary; 16-alignment of the directory base guarantees that
        // for 16-byte records in a 64-aligned block.
        assert_eq!(
            dir0 % DIR_REC,
            0,
            "catalog directory base must be 16-aligned"
        );
        for (i, (k, p)) in dir.iter().enumerate() {
            typed::write_u64(&self.dev, dir0 + i as u64 * DIR_REC, *k)?;
            typed::write_u64(&self.dev, dir0 + i as u64 * DIR_REC + 8, *p)?;
        }
        self.dev.persist(off, size.max(64))?;
        Ok(off)
    }

    /// Commits a fully persisted root: one 8-byte persist of the root
    /// pointer, the flip both split and rebuild paths hinge on. Only
    /// *after* the flip are the superseded root and `retired` pages
    /// freed (and dropped from the cache) — a crash on either side of
    /// the flip strands allocations that exactly one root references,
    /// never regions both roots need, and recovery's reachability GC
    /// reclaims the strays.
    fn flip_root(
        &self,
        alloc: &PmemAllocator,
        inner: &mut CatInner,
        root: u64,
        retired: &[u64],
    ) -> PortusResult<()> {
        typed::write_u64(&self.dev, self.root_ptr_at, root)?;
        self.dev.persist(self.root_ptr_at, 8)?;
        let old_root = inner.root_off;
        inner.root_off = root;
        let mut dead: Vec<u64> = retired.to_vec();
        for &p in retired {
            inner.cache.invalidate(p);
        }
        if old_root != 0 {
            dead.push(old_root);
        }
        self.free_offsets(alloc, inner, &dead)
    }

    /// Frees the catalog allocations at exactly `offs` through the
    /// retained handles — O(1) per free, no allocator-table scan, so
    /// catalog churn stays flat as the rest of the namespace grows to
    /// fleet scale. A recovered catalog has no handles for the regions
    /// it inherited from media; the first free that misses seeds the
    /// map with one scan (catalog-tagged regions only), then every
    /// later free hits it.
    fn free_offsets(
        &self,
        alloc: &PmemAllocator,
        inner: &mut CatInner,
        offs: &[u64],
    ) -> PortusResult<()> {
        if offs.is_empty() {
            return Ok(());
        }
        if offs.iter().any(|o| !inner.handles.contains_key(o)) {
            for a in alloc.live_allocations()? {
                if a.tag == CATALOG_PAGE_TAG || a.tag == CATALOG_ROOT_TAG {
                    inner.handles.entry(a.offset).or_insert(a);
                }
            }
        }
        for o in offs {
            if let Some(h) = inner.handles.remove(o) {
                alloc.free(&h)?;
            }
        }
        Ok(())
    }

    /// Rewrites every directory key under a shorter shared prefix and
    /// publishes a fresh root (page payloads are untouched).
    fn rekey(
        &self,
        alloc: &PmemAllocator,
        inner: &mut CatInner,
        new_lcp: Arc<str>,
    ) -> PortusResult<()> {
        let snap = Self::snap_of(inner);
        let mut dir = self.read_dir(&snap)?;
        for rec in dir.iter_mut() {
            let first = micropage::read_first_key(&self.dev, rec.1)?
                .ok_or_else(|| PortusError::Daemon("empty catalog page".into()))?;
            rec.0 = derive_key(&new_lcp, &first);
        }
        let keys: Vec<u64> = dir.iter().map(|(k, _)| *k).collect();
        let segs = train_segments(&keys, inner.model_error);
        let root = self.write_root(alloc, inner, &new_lcp, &segs, &dir)?;
        self.flip_root(alloc, inner, root, &[])?;
        inner.lcp = new_lcp;
        inner.segs = Arc::new(segs);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_pmem::PmemMode;
    use portus_sim::SimContext;
    use std::collections::BTreeMap;

    /// Root-pointer word lives at 0; the allocator table starts at 64.
    const ROOT_PTR: u64 = 0;

    fn harness(cfg: &CatalogConfig) -> (Arc<PmemDevice>, PmemAllocator, Catalog) {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 23);
        let alloc = PmemAllocator::format(dev.clone(), 64, 2048, 1 << 17, 1 << 23).unwrap();
        let cat = Catalog::format(dev.clone(), &alloc, ROOT_PTR, cfg).unwrap();
        (dev, alloc, cat)
    }

    /// Live catalog-tagged allocations must be exactly the current root
    /// plus the published pages.
    fn assert_no_leaks(alloc: &PmemAllocator, cat: &Catalog) {
        let pages = cat.page_offsets().unwrap();
        let live: Vec<_> = alloc
            .live_allocations()
            .unwrap()
            .into_iter()
            .filter(|a| a.tag == CATALOG_ROOT_TAG || a.tag == CATALOG_PAGE_TAG)
            .collect();
        assert_eq!(live.len() as u64, 1 + pages.len() as u64);
        for a in live {
            assert!(a.offset == cat.root_offset() || pages.contains(&a.offset));
        }
    }

    #[test]
    fn derive_key_is_monotone_with_lex_order() {
        let lcp = "model-";
        let mut names: Vec<String> = (0..200).map(|i| format!("model-{i:05}")).collect();
        names.push("aardvark".into()); // below the prefix range
        names.push("zebra".into()); // above it
        names.push("model-".into()); // exactly the prefix
        names.sort();
        let keys: Vec<u64> = names.iter().map(|n| derive_key(lcp, n)).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1], "derived keys must be non-decreasing");
        }
        assert_eq!(derive_key(lcp, "abc"), 0);
        assert_eq!(derive_key(lcp, "zzz"), u64::MAX);
    }

    #[test]
    fn common_prefix_clamps_to_char_boundaries() {
        // "modelα"/"modelβ" agree for 6 bytes — one byte into 'α'; the
        // prefix must stop at the boundary, not split the character.
        assert_eq!(common_prefix("modelα", "modelβ"), "model");
        assert_eq!(common_prefix("модель-a", "модель-b"), "модель-");
        assert_eq!(common_prefix("日本語", "日本酒"), "日本");
        assert_eq!(common_prefix("same", "same"), "same");
        assert_eq!(common_prefix("", "x"), "");
    }

    #[test]
    fn multibyte_names_do_not_panic_and_resolve() {
        // Regression: byte-counted prefix slicing panicked the daemon
        // on the first pair of names diverging inside a multibyte
        // character ('byte index 6 is not a char boundary').
        let (_dev, alloc, cat) = harness(&CatalogConfig::default());
        cat.insert(&alloc, "modelα", 1).unwrap();
        cat.insert(&alloc, "modelβ", 2).unwrap(); // LCP shrinks inside 'α'
        assert_eq!(cat.lookup("modelα").unwrap(), Some(1));
        assert_eq!(cat.lookup("modelβ").unwrap(), Some(2));
        // Mixed-script churn across splits and rekeys.
        let names: Vec<String> = (0..300u64)
            .map(|i| match i % 4 {
                0 => format!("модель-{i:04}"),
                1 => format!("モデル-{i:04}"),
                2 => format!("model-{i:04}"),
                _ => format!("模型-{i:04}"),
            })
            .collect();
        for (i, n) in names.iter().enumerate() {
            cat.insert(&alloc, n, 100 + i as u64).unwrap();
        }
        for (i, n) in names.iter().enumerate() {
            assert_eq!(cat.lookup(n).unwrap(), Some(100 + i as u64), "name {n}");
        }
        for n in names.iter().step_by(3) {
            assert!(cat.remove(&alloc, n).unwrap().is_some());
        }
        // bulk_replace derives its LCP from first/last sorted names —
        // force that pair to diverge mid-character too.
        cat.bulk_replace(&alloc, &[("prefixπ1".into(), 7), ("prefixσ2".into(), 8)])
            .unwrap();
        assert_eq!(cat.lookup("prefixπ1").unwrap(), Some(7));
        assert_eq!(cat.lookup("prefixσ2").unwrap(), Some(8));
        assert_no_leaks(&alloc, &cat);
    }

    #[test]
    fn train_segments_respects_error_bound() {
        // A convex-ish curve the single-line fit cannot follow.
        let keys: Vec<u64> = (0..500u64).map(|i| i * i * 7 + i).collect();
        let eps = 4u64;
        let segs = train_segments(&keys, eps);
        assert!(!segs.is_empty());
        for (i, &k) in keys.iter().enumerate() {
            let s = match segs.binary_search_by(|s| s.first_key.cmp(&k)) {
                Ok(s) => s,
                Err(s) => s - 1,
            };
            let seg = segs[s];
            let pos = seg.first_idx as f64 + seg.slope * (k - seg.first_key) as f64;
            let err = (pos - i as f64).abs();
            assert!(err <= eps as f64 + 1.0, "key {k}: err {err} > eps {eps}");
        }
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let (_dev, alloc, cat) = harness(&CatalogConfig::default());
        for i in 0..300u64 {
            assert_eq!(
                cat.insert(&alloc, &format!("model-{i:05}"), 1000 + i)
                    .unwrap(),
                None
            );
        }
        assert_eq!(cat.len(), 300);
        for i in 0..300u64 {
            assert_eq!(
                cat.lookup(&format!("model-{i:05}")).unwrap(),
                Some(1000 + i)
            );
        }
        assert_eq!(cat.lookup("model-99999").unwrap(), None);
        // Update in place returns the previous offset.
        assert_eq!(cat.insert(&alloc, "model-00007", 7777).unwrap(), Some(1007));
        assert_eq!(cat.lookup("model-00007").unwrap(), Some(7777));
        assert_eq!(cat.len(), 300);
        for i in (0..300u64).step_by(3) {
            assert_eq!(
                cat.remove(&alloc, &format!("model-{i:05}")).unwrap(),
                Some(1000 + i)
            );
        }
        assert_eq!(cat.len(), 200);
        for i in 0..300u64 {
            let got = cat.lookup(&format!("model-{i:05}")).unwrap();
            if i % 3 == 0 {
                assert_eq!(got, None);
            } else if i == 7 {
                assert_eq!(got, Some(7777));
            } else {
                assert_eq!(got, Some(1000 + i));
            }
        }
    }

    #[test]
    fn churn_matches_btreemap_and_leaks_nothing() {
        let cfg = CatalogConfig {
            page_bytes: 512,
            cache_pages: 4,
            model_error: 4,
        };
        let (_dev, alloc, cat) = harness(&cfg);
        let mut oracle: BTreeMap<String, u64> = BTreeMap::new();
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        for step in 0..1200u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let name = format!("m-{:04}", rng % 400);
            match rng >> 61 {
                0..=4 => {
                    let prev = cat.insert(&alloc, &name, step).unwrap();
                    assert_eq!(prev, oracle.insert(name, step));
                }
                _ => {
                    let prev = cat.remove(&alloc, &name).unwrap();
                    assert_eq!(prev, oracle.remove(&name));
                }
            }
        }
        assert_eq!(cat.len(), oracle.len() as u64);
        let scanned = cat.scan().unwrap();
        let want: Vec<(String, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(scanned, want);
        // Every live catalog allocation is the current root or a
        // current page — churn freed all superseded copies.
        assert_no_leaks(&alloc, &cat);
    }

    #[test]
    fn directory_records_stay_inside_one_cache_line() {
        // The in-place record flip is only crash-atomic if no 16-byte
        // record straddles a 64-byte boundary; that holds iff the
        // directory base is 16-aligned for every segment count.
        let cfg = CatalogConfig {
            page_bytes: 256,
            cache_pages: 4,
            model_error: 2,
        };
        let (_dev, alloc, cat) = harness(&cfg);
        for n in [1u64, 37, 150, 400, 900] {
            let entries: Vec<(String, u64)> =
                (0..n).map(|i| (format!("m{:08}", i * i * 13 + i), i)).collect();
            cat.bulk_replace(&alloc, &entries).unwrap();
            let inner = cat.inner.lock();
            let snap = Catalog::snap_of(&inner);
            let base = cat.dir_base(&snap);
            assert_eq!(base % DIR_REC, 0, "{} segs", snap.segs.len());
            for i in 0..snap.dir_count {
                let at = base + i * DIR_REC;
                assert_eq!(at / 64, (at + DIR_REC - 1) / 64, "record {i} straddles");
            }
        }
    }

    #[test]
    fn page_cache_stays_clamped() {
        let cfg = CatalogConfig {
            page_bytes: 256,
            cache_pages: 3,
            model_error: 4,
        };
        let (_dev, alloc, cat) = harness(&cfg);
        let entries: Vec<(String, u64)> =
            (0..600u64).map(|i| (format!("model-{i:06}"), i)).collect();
        cat.bulk_replace(&alloc, &entries).unwrap();
        let s = cat.stats();
        assert!(s.pages > 20, "256-byte pages must spread 600 entries");
        for i in 0..600u64 {
            assert_eq!(cat.lookup(&format!("model-{i:06}")).unwrap(), Some(i));
        }
        let s = cat.stats();
        assert!(s.cached_pages <= 3, "cache over clamp: {}", s.cached_pages);
        assert!(s.cache_bytes < 64 * 1024);
        assert!(s.cache_misses > 0);
        // A hot loop over one name hits the cache.
        let h0 = cat.stats().cache_hits;
        for _ in 0..50 {
            cat.lookup("model-000123").unwrap();
        }
        assert!(cat.stats().cache_hits >= h0 + 49);
    }

    #[test]
    fn duplicate_derived_keys_resolve_by_first_name() {
        // Three groups of names agreeing for 8+ bytes past the (empty)
        // shared prefix: whole page runs share one derived key, so
        // lookups must resolve ties by comparing page first names.
        let cfg = CatalogConfig {
            page_bytes: 256,
            cache_pages: 8,
            model_error: 2,
        };
        let (_dev, alloc, cat) = harness(&cfg);
        let entries: Vec<(String, u64)> = (0..900u64)
            .map(|i| (format!("{}CCCCCCCCCC{:04}", i / 300, i % 300), i))
            .collect();
        cat.bulk_replace(&alloc, &entries).unwrap();
        for (name, off) in &entries {
            assert_eq!(cat.lookup(name).unwrap(), Some(*off), "name {name}");
        }
        assert_eq!(cat.lookup("1CCCCCCCCCC9999").unwrap(), None);
    }

    #[test]
    fn prefix_breaking_insert_rekeys_directory() {
        let (_dev, alloc, cat) = harness(&CatalogConfig::default());
        // A long shared prefix eats the whole 8-byte key budget...
        for i in 0..200u64 {
            cat.insert(&alloc, &format!("org/team/project/model-{i:05}"), i)
                .unwrap();
        }
        // ...then a short name invalidates every derived key at once.
        cat.insert(&alloc, "zzz", 9000).unwrap();
        cat.insert(&alloc, "aaa", 9001).unwrap();
        assert_eq!(cat.lookup("zzz").unwrap(), Some(9000));
        assert_eq!(cat.lookup("aaa").unwrap(), Some(9001));
        for i in 0..200u64 {
            assert_eq!(
                cat.lookup(&format!("org/team/project/model-{i:05}"))
                    .unwrap(),
                Some(i)
            );
        }
    }

    #[test]
    fn recover_rebuilds_the_mirror_from_media() {
        let cfg = CatalogConfig {
            page_bytes: 512,
            cache_pages: 8,
            model_error: 4,
        };
        let (dev, alloc, cat) = harness(&cfg);
        let entries: Vec<(String, u64)> = (0..500u64)
            .map(|i| (format!("model-{i:05}"), 2000 + i))
            .collect();
        cat.bulk_replace(&alloc, &entries).unwrap();
        let root = cat.root_offset();
        let pages = cat.page_offsets().unwrap();
        drop(cat);
        let rec = Catalog::recover(dev, ROOT_PTR, &cfg).unwrap();
        assert_eq!(rec.root_offset(), root);
        assert_eq!(rec.page_offsets().unwrap(), pages);
        assert_eq!(rec.len(), 500);
        for (name, off) in &entries {
            assert_eq!(rec.lookup(name).unwrap(), Some(*off));
        }
        // The recovered page size comes from the root, not the config.
        assert_eq!(rec.page_bytes, 512);
    }

    #[test]
    fn recovered_catalog_frees_superseded_regions() {
        // A recovered catalog holds no allocator handles for the
        // regions it inherited; mutations must seed them (one scan)
        // and then free O(1) without leaking the inherited copies.
        let cfg = CatalogConfig {
            page_bytes: 512,
            cache_pages: 4,
            model_error: 4,
        };
        let (dev, alloc, cat) = harness(&cfg);
        let entries: Vec<(String, u64)> =
            (0..400u64).map(|i| (format!("model-{i:05}"), i)).collect();
        cat.bulk_replace(&alloc, &entries).unwrap();
        drop(cat);
        let rec = Catalog::recover(dev, ROOT_PTR, &cfg).unwrap();
        for i in 0..400u64 {
            if i % 2 == 0 {
                rec.remove(&alloc, &format!("model-{i:05}")).unwrap();
            } else {
                rec.insert(&alloc, &format!("model-{i:05}"), 9000 + i).unwrap();
            }
        }
        assert_eq!(rec.len(), 200);
        assert_no_leaks(&alloc, &rec);
    }

    #[test]
    fn reconcile_counts_and_repairs_divergence() {
        let (_dev, alloc, cat) = harness(&CatalogConfig::default());
        let live: Vec<(String, u64)> = (0..50u64).map(|i| (format!("model-{i:03}"), i)).collect();
        cat.bulk_replace(&alloc, &live).unwrap();
        assert_eq!(cat.reconcile(&alloc, &live).unwrap(), 0);
        // One stale catalog entry, one missing, one remapped.
        let mut want = live.clone();
        want.remove(0); // model-000 becomes catalog-only
        want.push(("model-999".into(), 999)); // table-only
        want[0].1 = 4242; // model-001 remapped
        assert_eq!(cat.reconcile(&alloc, &want).unwrap(), 3);
        assert_eq!(cat.lookup("model-000").unwrap(), None);
        assert_eq!(cat.lookup("model-999").unwrap(), Some(999));
        assert_eq!(cat.lookup("model-001").unwrap(), Some(4242));
    }

    #[test]
    fn model_predictions_mostly_avoid_the_fallback() {
        let (_dev, alloc, cat) = harness(&CatalogConfig {
            page_bytes: 512,
            cache_pages: 0, // force every probe to PMem
            model_error: 8,
        });
        let entries: Vec<(String, u64)> =
            (0..2000u64).map(|i| (format!("model-{i:07}"), i)).collect();
        cat.bulk_replace(&alloc, &entries).unwrap();
        for (name, off) in &entries {
            assert_eq!(cat.lookup(name).unwrap(), Some(*off));
        }
        let s = cat.stats();
        assert!(s.model_segments >= 1);
        // The trained model should bracket nearly every probe; the
        // binary-search fallback exists for stale models, not steady
        // state.
        assert!(
            s.model_fallbacks * 10 <= 2000,
            "too many fallbacks: {}",
            s.model_fallbacks
        );
    }

    #[test]
    fn concurrent_lookups_race_mutations_safely() {
        // Lookups run their PMem reads outside the catalog mutex and
        // must retry (never error, never return garbage) when a
        // split/free commits underneath them.
        let cfg = CatalogConfig {
            page_bytes: 512,
            cache_pages: 8,
            model_error: 4,
        };
        let (_dev, alloc, cat) = harness(&cfg);
        for i in 0..200u64 {
            cat.insert(&alloc, &format!("model-{i:05}"), i).unwrap();
        }
        let cat = Arc::new(cat);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cat = cat.clone();
                s.spawn(move || {
                    for round in 0..200u64 {
                        let i = (round * 7 + t * 13) % 400;
                        let got = cat.lookup(&format!("model-{i:05}")).unwrap();
                        if let Some(v) = got {
                            // Either the original offset or a churned one.
                            assert!(v == i || v >= 5000, "model-{i:05} → {v}");
                        }
                    }
                });
            }
            // Churn concurrently: updates, inserts past the initial
            // population (forcing splits), and removes.
            for i in 0..400u64 {
                if i % 3 == 0 && i < 200 {
                    cat.remove(&alloc, &format!("model-{i:05}")).unwrap();
                } else {
                    cat.insert(&alloc, &format!("model-{i:05}"), 5000 + i)
                        .unwrap();
                }
            }
        });
        let cat = Arc::try_unwrap(cat).unwrap_or_else(|_| panic!("lookup threads leaked"));
        assert_no_leaks(&alloc, &cat);
    }
}
