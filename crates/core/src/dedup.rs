//! The content-addressed dedup tier (ROADMAP item 5).
//!
//! With dedup enabled, a sealed checkpoint's staging region is chunked
//! into fixed-size extents keyed by a splitmix64 content hash
//! ([`portus_pmem::content_hash`]) and stored once in the shared
//! [`portus_pmem::ExtentStore`]; the slot then references an **extent
//! map** — a small on-media array of extent slots — instead of a
//! contiguous region. Fine-tunes of one base model produce mostly
//! identical chunks, so N models share one physical copy of the weights
//! they have in common.
//!
//! ## Crash ordering
//!
//! Ingest runs *after* the slot sealed `Done` over its plain staging
//! region, so the checkpoint's durability never depends on dedup:
//!
//! 1. each chunk is inserted (or refcounted) in the extent store;
//! 2. the extent map is written and persisted;
//! 3. the slot header flips `{data_off → 0, ext_map → map}` in one
//!    cache-line persist ([`Index::publish_slot_extents`]);
//! 4. the staging region is freed.
//!
//! A crash before step 3 leaves a valid plain-region checkpoint (the
//! inserted extents are unreferenced by any map and recovery sweeps
//! them); a crash after step 3 leaves a valid extent-mapped checkpoint
//! (the staging region is unreachable and recovery GCs it). Release is
//! the mirror image: header first, then decrefs, then the map region —
//! every crash window over-counts, never under-counts, and recovery's
//! recount makes the refcounts exact again.
//!
//! Restores materialize the logical bytes into a scratch region
//! (tagged [`SCRATCH_TAG`], reclaimed by recovery if a crash strands
//! it), paying the extents' *stored* size in DAX reads — compressed
//! cold extents trade restore read cost for capacity.

use portus_pmem::{typed, PmemAlloc, PmemDevice};

use crate::index::{combine_digests, name_hash, region_digest};
use crate::{Index, MIndex, PortusError, PortusResult, SlotState};

const XMAP_MAGIC: u32 = 0x584D_4150; // "XMAP"
const XM_COUNT: u64 = 4;
const XM_CHUNK: u64 = 8;
const XM_LOGICAL: u64 = 16;
const XM_ENTRIES: u64 = 32;
const XM_ENTRY_SIZE: u64 = 8;

/// Allocator tag for restore-side materialization scratch regions.
/// Unreachable from any index structure, so recovery GCs strays.
pub(crate) const SCRATCH_TAG: u64 = 0x5343_5254_4348_5047; // "SCRTCHPG"

/// Dedup tier configuration (opt-in via
/// [`crate::DaemonConfig::dedup`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupConfig {
    /// Extent size checkpoints are chunked into. Smaller chunks share
    /// more across diverged fine-tunes but cost more records.
    pub chunk_bytes: u64,
    /// Extent-store capacity (records).
    pub max_extents: u32,
    /// RLE-compress chunks at ingest when that is smaller.
    pub compress_on_ingest: bool,
    /// When set, each repack pass RLE-recompresses extents idle for at
    /// least this many store accesses; restores of them pay the
    /// decompression at DAX-read cost.
    pub cold_compress_idle: Option<u64>,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            chunk_bytes: 64 << 10,
            max_extents: 16384,
            compress_on_ingest: false,
            cold_compress_idle: None,
        }
    }
}

/// A decoded extent map.
#[derive(Debug, Clone)]
pub(crate) struct ExtentMap {
    /// Chunk size the checkpoint was split with.
    pub chunk_bytes: u64,
    /// Logical (checkpoint) length in bytes.
    pub logical: u64,
    /// Extent-store slots, one per chunk, in offset order.
    pub extents: Vec<u32>,
}

/// On-media size of a map with `count` entries.
pub(crate) fn map_size(count: u64) -> u64 {
    XM_ENTRIES + count * XM_ENTRY_SIZE
}

/// Decodes the extent map at `off`.
///
/// # Errors
///
/// [`PortusError::Daemon`] on bad magic.
pub(crate) fn read_extent_map(dev: &PmemDevice, off: u64) -> PortusResult<ExtentMap> {
    if typed::read_u32(dev, off)? != XMAP_MAGIC {
        return Err(PortusError::Daemon(format!(
            "bad extent map magic at offset {off}"
        )));
    }
    let count = typed::read_u32(dev, off + XM_COUNT)?;
    let chunk_bytes = typed::read_u64(dev, off + XM_CHUNK)?;
    let logical = typed::read_u64(dev, off + XM_LOGICAL)?;
    let mut extents = Vec::with_capacity(count as usize);
    for i in 0..count as u64 {
        extents.push(typed::read_u32(dev, off + XM_ENTRIES + i * XM_ENTRY_SIZE)?);
    }
    Ok(ExtentMap {
        chunk_bytes,
        logical,
        extents,
    })
}

/// What one ingest did, for cost accounting and metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IngestReport {
    /// Chunks the checkpoint split into.
    pub chunks: usize,
    /// Of those, chunks that deduplicated against existing extents.
    pub shared_chunks: usize,
    /// Staging bytes read back off media (DAX-read cost).
    pub read_bytes: u64,
    /// Stored bytes newly written for unshared chunks (DAX-write cost).
    pub new_bytes: u64,
    /// Bytes of the extent map written (DAX-write cost).
    pub map_bytes: u64,
    /// Bytes of the detached staging region returned to the allocator.
    pub freed_staging: u64,
}

/// Converts a freshly sealed plain-region slot into an extent-mapped
/// one (crash ordering in the module docs). On failure the slot keeps
/// its plain region — the checkpoint stays valid, only the space win is
/// lost; references taken so far are dropped and the repack sweep
/// collects any refcount-0 residue.
///
/// # Errors
///
/// Extent-store, allocator, and device errors;
/// [`PortusError::AllocatorDivergence`] when the staging region is
/// unknown to the allocator (the header keeps the plain region then).
pub(crate) fn ingest_slot(
    index: &Index,
    mi: &mut MIndex,
    slot: usize,
    cfg: &DedupConfig,
) -> PortusResult<IngestReport> {
    let store = index
        .extent_store()
        .ok_or_else(|| PortusError::Daemon("dedup ingest without an extent store".into()))?;
    let hdr = mi.slots[slot];
    debug_assert_eq!(hdr.state, SlotState::Done, "ingest follows the seal");
    debug_assert_ne!(hdr.data_off, 0, "ingest needs a staging region");
    debug_assert_eq!(hdr.ext_map, 0, "slot already extent-mapped");
    let dev = index.device();
    let alloc = index.allocator();
    let hash = name_hash(&mi.name);

    // Resolve the staging allocation up front: if the allocator has no
    // record of it, surface divergence before taking any reference.
    let staging = alloc
        .live_allocations()?
        .into_iter()
        .find(|a| a.offset == hdr.data_off && a.tag == hash)
        .ok_or_else(|| PortusError::AllocatorDivergence {
            model: mi.name.clone(),
            slot,
            data_off: hdr.data_off,
        })?;

    let chunks = hdr.data_len.div_ceil(cfg.chunk_bytes).max(1);
    let mut report = IngestReport {
        chunks: chunks as usize,
        ..IngestReport::default()
    };
    let mut refs = Vec::with_capacity(chunks as usize);
    let mut buf = vec![0u8; cfg.chunk_bytes as usize];
    let drop_refs = |refs: &[portus_pmem::ExtentRef]| -> PortusResult<()> {
        for r in refs {
            store.decref(r.slot)?;
        }
        Ok(())
    };
    for i in 0..chunks {
        let rel = i * cfg.chunk_bytes;
        let len = cfg.chunk_bytes.min(hdr.data_len - rel) as usize;
        dev.read(hdr.data_off + rel, &mut buf[..len])?;
        report.read_bytes += len as u64;
        match store.insert_or_ref(&buf[..len], alloc, cfg.compress_on_ingest) {
            Ok(r) => {
                if r.shared {
                    report.shared_chunks += 1;
                } else {
                    report.new_bytes += r.stored_len;
                }
                refs.push(r);
            }
            Err(e) => {
                drop_refs(&refs)?;
                return Err(e.into());
            }
        }
    }

    // Write and persist the extent map, then flip the header.
    let msize = map_size(chunks);
    let map_alloc = match alloc.alloc_aligned(msize, 64, hash) {
        Ok(a) => a,
        Err(e) => {
            drop_refs(&refs)?;
            return Err(e.into());
        }
    };
    let m = map_alloc.offset;
    typed::write_u32(dev, m, XMAP_MAGIC)?;
    typed::write_u32(dev, m + XM_COUNT, chunks as u32)?;
    typed::write_u64(dev, m + XM_CHUNK, cfg.chunk_bytes)?;
    typed::write_u64(dev, m + XM_LOGICAL, hdr.data_len)?;
    for (i, r) in refs.iter().enumerate() {
        typed::write_u32(dev, m + XM_ENTRIES + i as u64 * XM_ENTRY_SIZE, r.slot)?;
        typed::write_u32(dev, m + XM_ENTRIES + i as u64 * XM_ENTRY_SIZE + 4, 0)?;
    }
    dev.persist(m, msize)?;
    report.map_bytes = msize;

    index.publish_slot_extents(mi, slot, m)?;
    alloc.free(&staging)?;
    report.freed_staging = staging.len;
    mi.slots[slot].data_off = 0;
    mi.slots[slot].ext_map = m;
    Ok(report)
}

/// Empties an extent-mapped slot and drops its references: header
/// flip first ([`Index::detach_slot_extents`], keeping the version
/// high-water mark), then decrefs, then the map region. Returns the
/// map bytes returned to the allocator.
///
/// # Errors
///
/// [`PortusError::AllocatorDivergence`] when the map region is unknown
/// to the allocator (the header is left untouched as evidence).
pub(crate) fn release_slot_extents(
    index: &Index,
    mi: &mut MIndex,
    slot: usize,
) -> PortusResult<u64> {
    let store = index
        .extent_store()
        .ok_or_else(|| PortusError::Daemon("extent release without an extent store".into()))?;
    let hdr = mi.slots[slot];
    debug_assert_ne!(hdr.ext_map, 0, "slot is not extent-mapped");
    let alloc = index.allocator();
    let map_alloc = alloc
        .live_allocations()?
        .into_iter()
        .find(|a| a.offset == hdr.ext_map)
        .ok_or_else(|| PortusError::AllocatorDivergence {
            model: mi.name.clone(),
            slot,
            data_off: hdr.ext_map,
        })?;
    let map = read_extent_map(index.device(), hdr.ext_map)?;
    index.detach_slot_extents(mi, slot)?;
    for &e in &map.extents {
        store.decref(e)?;
    }
    alloc.free(&map_alloc)?;
    let h = &mut mi.slots[slot];
    h.state = SlotState::Empty;
    h.checksum = 0;
    h.digest = 0;
    h.ext_map = 0;
    Ok(map_alloc.len)
}

/// A materialized extent-mapped checkpoint: the scratch region holding
/// the logical bytes, and the stored bytes read to build it (the
/// DAX-read cost — less than `logical` when extents are compressed,
/// plus nothing extra when they are not).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Materialized {
    /// The scratch allocation holding the logical bytes.
    pub region: PmemAlloc,
    /// Stored bytes read off media.
    pub stored_read: u64,
    /// Logical bytes written into the scratch region.
    pub logical: u64,
}

/// Rebuilds an extent-mapped slot's logical bytes into a fresh scratch
/// region so the plain restore datapath (verify + one-sided pushes) can
/// run unchanged against it. The caller frees `region` when done.
///
/// # Errors
///
/// Extent-store, allocator, and device errors; [`PortusError::Daemon`]
/// if the map's extents do not sum to its logical length.
pub(crate) fn materialize_slot(
    index: &Index,
    mi: &MIndex,
    slot: usize,
) -> PortusResult<Materialized> {
    let store = index
        .extent_store()
        .ok_or_else(|| PortusError::Daemon("materialize without an extent store".into()))?;
    let hdr = mi.slots[slot];
    debug_assert_ne!(hdr.ext_map, 0, "slot is not extent-mapped");
    let map = read_extent_map(index.device(), hdr.ext_map)?;
    let alloc = index.allocator();
    let region = alloc.alloc_aligned(map.logical.max(4096), 4096, SCRATCH_TAG)?;
    let dev = index.device();
    let mut out = Vec::new();
    let mut pos = 0u64;
    let mut stored_read = 0u64;
    for &e in &map.extents {
        stored_read += store.read_into(e, &mut out)?;
        dev.write(region.offset + pos, &out)?;
        pos += out.len() as u64;
    }
    if pos != map.logical {
        alloc.free(&region)?;
        return Err(PortusError::Daemon(format!(
            "extent map at {} materialized {pos} bytes, expected {}",
            hdr.ext_map, map.logical
        )));
    }
    Ok(Materialized {
        region,
        stored_read,
        logical: map.logical,
    })
}

/// A range copy out of an extent-mapped version, for delta-checkpoint
/// carries: bytes `[rel_off, rel_off + len)` of the logical checkpoint
/// land at the same relative offset in `dst_data_off`'s region.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RangeCopy {
    /// Stored bytes read off media (whole touched extents).
    pub read_bytes: u64,
    /// Positional digest of the copied range, keyed by `rel_off` —
    /// combinable with the pull runs' digests.
    pub digest: u64,
}

/// Copies one carry range from an extent-mapped previous version into a
/// plain target region (volatile; the caller's seal persists it).
///
/// # Errors
///
/// Extent-store and device errors; [`PortusError::Daemon`] on a range
/// past the map's logical length.
pub(crate) fn copy_range_from_extents(
    index: &Index,
    map_off: u64,
    dst_data_off: u64,
    rel_off: u64,
    len: u64,
) -> PortusResult<RangeCopy> {
    let store = index
        .extent_store()
        .ok_or_else(|| PortusError::Daemon("extent copy without an extent store".into()))?;
    if len == 0 {
        return Ok(RangeCopy {
            read_bytes: 0,
            digest: 0,
        });
    }
    let map = read_extent_map(index.device(), map_off)?;
    if rel_off + len > map.logical {
        return Err(PortusError::Daemon(format!(
            "carry [{rel_off}, +{len}) past extent map logical length {}",
            map.logical
        )));
    }
    let dev = index.device();
    let first = rel_off / map.chunk_bytes;
    let last = (rel_off + len - 1) / map.chunk_bytes;
    let mut out = Vec::new();
    let mut read_bytes = 0u64;
    let mut digest = 0u64;
    for ci in first..=last {
        let ext = map.extents[ci as usize];
        read_bytes += store.read_into(ext, &mut out)?;
        let chunk_base = ci * map.chunk_bytes;
        let start = rel_off.max(chunk_base);
        let end = (rel_off + len).min(chunk_base + out.len() as u64);
        let piece = &out[(start - chunk_base) as usize..(end - chunk_base) as usize];
        dev.write(dst_data_off + start, piece)?;
        digest = combine_digests(digest, region_digest(piece, start));
    }
    Ok(RangeCopy { read_bytes, digest })
}
