//! The PMem repacking tool (§III-D2, Fig. 7).
//!
//! Double mapping costs one extra checkpoint-sized region per model.
//! The repacker reclaims the two kinds of waste the paper identifies:
//!
//! 1. **finished jobs** — only the latest version matters once training
//!    completes; the other slot's region is freed;
//! 2. **crashed checkpoints** — a slot stuck in `Active` holds
//!    incomplete ("collapsed") data; its region is freed.
//!
//! Freed slots keep their header with `data_off = 0`; if the model
//! trains again, the daemon lazily re-allocates a region
//! ([`Index::ensure_slot_region`]).
//!
//! A pass builds one offset-keyed view of the allocator's live
//! allocations up front and resolves every slot against it, instead of
//! rescanning `live_allocations()` per slot. A slot header pointing at
//! an offset the allocator does not know is index/allocator
//! **divergence**: the pass stops with
//! [`PortusError::AllocatorDivergence`] and leaves the header untouched
//! as evidence — clearing it would silently leak the region.

use std::collections::HashMap;

use portus_pmem::PmemAlloc;

use crate::daemon::PortusDaemon;
use crate::{Index, PortusError, PortusResult, SlotState};

/// What one repacking pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepackReport {
    /// Models examined.
    pub scanned_models: usize,
    /// Checkpoint slots whose regions were freed.
    pub reclaimed_slots: usize,
    /// Of those, slots that were `Active` (crashed mid-checkpoint).
    pub reclaimed_active: usize,
    /// Bytes returned to the allocator.
    pub freed_bytes: u64,
}

/// Runs one repacking pass over every model on `daemon`'s PMem.
///
/// With `reclaim_active = false` (the safe default while jobs run),
/// only finished jobs are compacted. With `reclaim_active = true`
/// (safe right after daemon recovery, before any job resumes),
/// `Active` slots of crashed checkpoints are reclaimed too.
///
/// # Errors
///
/// Device/allocator errors; [`PortusError::AllocatorDivergence`] if a
/// slot header points at a region the allocator has no record of (the
/// slot header is left as-is so the corruption stays inspectable).
pub fn repack(daemon: &PortusDaemon, reclaim_active: bool) -> PortusResult<RepackReport> {
    let index = daemon.index();
    let mut report = RepackReport::default();
    // One offset-keyed view of the live allocations for the whole
    // pass; entries are consumed as slots free them, so a second slot
    // claiming an already-freed offset also surfaces as divergence.
    let mut by_offset: HashMap<u64, PmemAlloc> = index
        .allocator()
        .live_allocations()?
        .into_iter()
        .map(|a| (a.offset, a))
        .collect();
    for (_hash, off) in index.live_entries()? {
        let mi = index.load_mindex(off)?;
        report.scanned_models += 1;
        let latest = mi.latest_done().map(|(i, _)| i);
        let job_complete = mi.flags & crate::FLAG_JOB_COMPLETE != 0;
        for (s, hdr) in mi.slots.iter().enumerate() {
            if hdr.data_off == 0 {
                continue; // already reclaimed
            }
            let is_latest_done = latest == Some(s);
            let reclaim = match hdr.state {
                SlotState::Done => job_complete && !is_latest_done,
                SlotState::Active => reclaim_active || job_complete,
                SlotState::Empty => job_complete,
            };
            if reclaim {
                let freed = free_slot_region(index, &mi, s, &mut by_offset)?;
                report.reclaimed_slots += 1;
                report.freed_bytes += freed;
                if hdr.state == SlotState::Active {
                    report.reclaimed_active += 1;
                }
            }
        }
    }
    Ok(report)
}

/// Frees the allocation backing `slot` and clears the slot header.
/// The allocation is resolved through `by_offset` (built once per
/// pass) and consumed, so the same region cannot be freed twice.
///
/// # Errors
///
/// [`PortusError::AllocatorDivergence`] when no live allocation starts
/// at the header's `data_off` — the header is **not** cleared in that
/// case, so the corrupt state survives for inspection.
fn free_slot_region(
    index: &Index,
    mi: &crate::MIndex,
    slot: usize,
    by_offset: &mut HashMap<u64, PmemAlloc>,
) -> PortusResult<u64> {
    let hdr = mi.slots[slot];
    let alloc = by_offset
        .remove(&hdr.data_off)
        .ok_or_else(|| PortusError::AllocatorDivergence {
            model: mi.name.clone(),
            slot,
            data_off: hdr.data_off,
        })?;
    index.allocator().free(&alloc)?;
    index.clear_slot_region(mi, slot)?;
    Ok(alloc.len)
}
