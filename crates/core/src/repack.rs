//! Online PMem space management (§III-D2, Fig. 7).
//!
//! Double mapping costs one extra checkpoint-sized region per model.
//! The repacker reclaims the two kinds of waste the paper identifies:
//!
//! 1. **finished jobs** — only the latest version matters once training
//!    completes; the other slot's region is freed;
//! 2. **crashed checkpoints** — a slot stuck in `Active` holds
//!    incomplete ("collapsed") data; its region is freed.
//!
//! Freed slots keep their header with `data_off = 0` (and a zeroed
//! version — explicit reclaim forgets the high-water mark); if the
//! model trains again, the daemon lazily re-allocates a region
//! ([`Index::ensure_slot_region`]).
//!
//! Unlike the original offline tool, a pass is safe to run **while the
//! daemon serves traffic**. Three rules make it so:
//!
//! * **per-model locking** — each model is resolved and reclaimed under
//!   its own `model_lock`, the same lock every datapath mutator takes.
//!   A busy model is `try_lock`ed and skipped (counted in
//!   [`RepackReport::skipped_models`]) rather than waited on, so a pass
//!   never blocks behind a long checkpoint — and never deadlocks when
//!   the trigger *is* a checkpoint holding that lock (the `OutOfSpace`
//!   recovery path).
//! * **the recovery-epoch gate** — an `Active` slot is only reclaimable
//!   (even with `reclaim_active = true`) if it was already `Active`
//!   when this daemon instance recovered its index
//!   (`DaemonState::stale_active`). Such slots are crash debris from a
//!   previous incarnation; an `Active` slot minted by *this* process
//!   may have a pull in flight and is never touched.
//! * **per-model allocation views** — slot headers are resolved against
//!   the allocator's live allocations filtered to the model's tag,
//!   re-read under the model lock. A header pointing at an offset the
//!   allocator does not know is index/allocator **divergence**: the
//!   pass stops with [`PortusError::AllocatorDivergence`] and leaves
//!   the header untouched as evidence — clearing it would silently
//!   leak the region.
//!
//! Passes are triggered three ways: explicitly ([`repack`], the
//! `portusctl`/recovery entry point), by the dispatch loop when free
//! space falls between the configured watermarks (background thread),
//! and inline on an allocator `OutOfSpace` or a breach of the low
//! watermark. Every pass bumps the space counters, refreshes the
//! free/used/fragmentation gauges, and records a
//! [`portus_sim::TraceOp::Repack`] span keyed by the daemon's pass
//! counter.

use std::collections::HashMap;

use portus_pmem::PmemAlloc;
use portus_sim::{SpanRecord, Stage, TraceOp};

use crate::daemon::{DaemonState, PortusDaemon};
use crate::index::name_hash;
use crate::{Index, PortusError, PortusResult, SlotState};

/// What one repacking pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepackReport {
    /// Models examined under their lock.
    pub scanned_models: usize,
    /// Models skipped because a datapath operation held their lock.
    pub skipped_models: usize,
    /// Checkpoint slots whose regions were freed.
    pub reclaimed_slots: usize,
    /// Of those, slots that were `Active` (crashed mid-checkpoint).
    pub reclaimed_active: usize,
    /// Bytes returned to the allocator.
    pub freed_bytes: u64,
    /// Refcount-zero extents swept from the content-addressed store
    /// (zero on daemons without a dedup tier).
    pub swept_extents: usize,
    /// Payload bytes those sweeps returned to the allocator.
    pub swept_extent_bytes: u64,
    /// Cold extents rewritten compressed by this pass.
    pub compressed_extents: usize,
    /// Bytes the compression rewrites saved.
    pub compressed_saved_bytes: u64,
}

/// Runs one repacking pass over every model on `daemon`'s PMem.
///
/// With `reclaim_active = false` (the safe default while jobs run),
/// only finished jobs are compacted. With `reclaim_active = true`,
/// crash debris — `Active` slots already stale at this daemon's
/// recovery — is reclaimed too; `Active` slots minted by the running
/// daemon are never touched (see the module docs).
///
/// # Errors
///
/// Device/allocator errors; [`PortusError::AllocatorDivergence`] if a
/// slot header points at a region the allocator has no record of (the
/// slot header is left as-is so the corruption stays inspectable).
pub fn repack(daemon: &PortusDaemon, reclaim_active: bool) -> PortusResult<RepackReport> {
    repack_pass(daemon.state(), reclaim_active, None)
}

/// The pass itself, shared by every trigger. `target_free` (the high
/// watermark, for background passes) stops the scan early once the
/// allocator reports at least that many free bytes. Counters, gauges,
/// and the pass span are recorded even when the scan errors out.
pub(crate) fn repack_pass(
    state: &DaemonState,
    reclaim_active: bool,
    target_free: Option<u64>,
) -> PortusResult<RepackReport> {
    let pass_id = state.next_repack_id();
    let t0 = state.ctx.clock.now();
    let mut report = RepackReport::default();
    let scan = scan_models(state, reclaim_active, target_free, &mut report);
    // The extent sweep runs even when the scan stopped early: the
    // refcount-zero extents it collects were dropped before this pass
    // and are reclaimable regardless of what the scan saw.
    let sweep = sweep_extents(state, &mut report);
    state.ctx.stats.record_repack_pass();
    state.ctx.metrics.record_repack_pass();
    state.refresh_space_gauges();
    let end = state.ctx.clock.now();
    state
        .ctx
        .metrics
        .record_stage(TraceOp::Repack, Stage::Repack, end.saturating_since(t0));
    state.ctx.tracer.record(SpanRecord {
        req_id: pass_id,
        op: TraceOp::Repack,
        stage: Stage::Repack,
        model: String::new(),
        start: t0,
        end,
        round: 0,
        lane: 0,
    });
    scan.and(sweep).map(|()| report)
}

/// Sweeps refcount-zero extents out of the content-addressed store and
/// (when [`crate::DedupConfig::cold_compress_idle`] is set) rewrites
/// cold extents compressed. A no-op on daemons without an extent store.
fn sweep_extents(state: &DaemonState, report: &mut RepackReport) -> PortusResult<()> {
    let Some(store) = state.index.extent_store() else {
        return Ok(());
    };
    let alloc = state.index.allocator();
    let (swept, bytes) = store.sweep_unreferenced(alloc)?;
    report.swept_extents = swept;
    report.swept_extent_bytes = bytes;
    if swept > 0 {
        state.ctx.metrics.record_swept_extents(swept as u64, bytes);
    }
    if let Some(idle) = state.cfg.dedup.as_ref().and_then(|d| d.cold_compress_idle) {
        let (compressed, saved) = store.compress_cold(alloc, idle)?;
        report.compressed_extents = compressed;
        report.compressed_saved_bytes = saved;
    }
    Ok(())
}

fn scan_models(
    state: &DaemonState,
    reclaim_active: bool,
    target_free: Option<u64>,
    report: &mut RepackReport,
) -> PortusResult<()> {
    let index = &state.index;
    for (_hash, off) in index.live_entries()? {
        if let Some(target) = target_free {
            if index.allocator().free_bytes() >= target {
                break;
            }
        }
        // Resolve the table entry to a name first, then serialise with
        // the datapath on that model's lock.
        let name = index.load_mindex(off)?.name;
        let lock = state.model_lock(&name);
        let _guard = match lock.try_lock() {
            Some(guard) => guard,
            None => {
                report.skipped_models += 1;
                continue;
            }
        };
        // Under the lock, confirm the name still maps to this entry —
        // a concurrent Drop (or drop + re-register) may have retired
        // the offset between the scan and the lock.
        if state.resolve_model(&name)? != Some(off) {
            continue;
        }
        // Re-read the MIndex under the lock; the pre-lock snapshot may
        // predate a checkpoint that just sealed.
        let mi = index.load_mindex(off)?;
        report.scanned_models += 1;
        // The model's slot regions, keyed by offset. Entries are
        // consumed as slots free them, so a second slot claiming an
        // already-freed offset also surfaces as divergence.
        let tag = name_hash(&mi.name);
        let mut by_offset: HashMap<u64, PmemAlloc> = index
            .allocator()
            .live_allocations()?
            .into_iter()
            .filter(|a| a.tag == tag)
            .map(|a| (a.offset, a))
            .collect();
        let latest = mi.latest_done().map(|(i, _)| i);
        let job_complete = mi.flags & crate::FLAG_JOB_COMPLETE != 0;
        for (s, hdr) in mi.slots.iter().enumerate() {
            if hdr.data_off == 0 && hdr.ext_map == 0 {
                continue; // already reclaimed
            }
            let is_latest_done = latest == Some(s);
            let reclaim = match hdr.state {
                SlotState::Done => job_complete && !is_latest_done,
                SlotState::Active => {
                    job_complete
                        || (reclaim_active
                            && state
                                .stale_active
                                .lock()
                                .contains(&(mi.offset, s, hdr.version)))
                }
                SlotState::Empty => job_complete,
            };
            if reclaim {
                let freed = if hdr.ext_map != 0 {
                    free_slot_extents(index, &mi, s, &mut by_offset)?
                } else {
                    free_slot_region(index, &mi, s, &mut by_offset)?
                };
                report.reclaimed_slots += 1;
                report.freed_bytes += freed;
                if hdr.state == SlotState::Active {
                    report.reclaimed_active += 1;
                    state
                        .stale_active
                        .lock()
                        .remove(&(mi.offset, s, hdr.version));
                }
                state.ctx.stats.record_reclaimed_slot(freed);
                state.ctx.metrics.record_reclaimed(freed);
            }
        }
    }
    Ok(())
}

/// Frees the allocation backing `slot` and clears the slot header.
/// The allocation is resolved through `by_offset` (built per model,
/// under its lock) and consumed, so the same region cannot be freed
/// twice.
///
/// # Errors
///
/// [`PortusError::AllocatorDivergence`] when no live allocation of this
/// model starts at the header's `data_off` — the header is **not**
/// cleared in that case, so the corrupt state survives for inspection.
fn free_slot_region(
    index: &Index,
    mi: &crate::MIndex,
    slot: usize,
    by_offset: &mut HashMap<u64, PmemAlloc>,
) -> PortusResult<u64> {
    let hdr = mi.slots[slot];
    let alloc =
        by_offset
            .remove(&hdr.data_off)
            .ok_or_else(|| PortusError::AllocatorDivergence {
                model: mi.name.clone(),
                slot,
                data_off: hdr.data_off,
            })?;
    index.allocator().free(&alloc)?;
    index.clear_slot_region(mi, slot)?;
    Ok(alloc.len)
}

/// Frees an **extent-mapped** slot: the header is cleared first (one
/// durable flip, forgetting the version like any explicit reclaim),
/// then the map's extent references are dropped, then the map region
/// itself is freed. A crash between the steps only over-counts
/// refcounts, which recovery recounts from the surviving maps; the
/// refcount-zero extent payloads are collected by the pass's own sweep.
/// Returns the map region's bytes (the payload bytes are reported by
/// the sweep instead).
///
/// # Errors
///
/// [`PortusError::AllocatorDivergence`] when no live allocation of this
/// model starts at the header's `ext_map` — the header is left as-is so
/// the corrupt state stays inspectable.
fn free_slot_extents(
    index: &Index,
    mi: &crate::MIndex,
    slot: usize,
    by_offset: &mut HashMap<u64, PmemAlloc>,
) -> PortusResult<u64> {
    let store = index
        .extent_store()
        .ok_or_else(|| PortusError::Daemon("extent-mapped slot without an extent store".into()))?;
    let hdr = mi.slots[slot];
    let map_alloc =
        by_offset
            .remove(&hdr.ext_map)
            .ok_or_else(|| PortusError::AllocatorDivergence {
                model: mi.name.clone(),
                slot,
                data_off: hdr.ext_map,
            })?;
    let map = crate::dedup::read_extent_map(index.device(), hdr.ext_map)?;
    index.clear_slot_region(mi, slot)?;
    for &e in &map.extents {
        store.decref(e)?;
    }
    index.allocator().free(&map_alloc)?;
    Ok(map_alloc.len)
}
