//! The PMem repacking tool (§III-D2, Fig. 7).
//!
//! Double mapping costs one extra checkpoint-sized region per model.
//! The repacker reclaims the two kinds of waste the paper identifies:
//!
//! 1. **finished jobs** — only the latest version matters once training
//!    completes; the other slot's region is freed;
//! 2. **crashed checkpoints** — a slot stuck in `Active` holds
//!    incomplete ("collapsed") data; its region is freed.
//!
//! Freed slots keep their header with `data_off = 0`; if the model
//!    trains again, the daemon lazily re-allocates a region
//!    ([`Index::ensure_slot_region`]).

use crate::daemon::PortusDaemon;
use crate::{Index, PortusResult, SlotState};

/// What one repacking pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepackReport {
    /// Models examined.
    pub scanned_models: usize,
    /// Checkpoint slots whose regions were freed.
    pub reclaimed_slots: usize,
    /// Of those, slots that were `Active` (crashed mid-checkpoint).
    pub reclaimed_active: usize,
    /// Bytes returned to the allocator.
    pub freed_bytes: u64,
}

/// Runs one repacking pass over every model on `daemon`'s PMem.
///
/// With `reclaim_active = false` (the safe default while jobs run),
/// only finished jobs are compacted. With `reclaim_active = true`
/// (safe right after daemon recovery, before any job resumes),
/// `Active` slots of crashed checkpoints are reclaimed too.
///
/// # Errors
///
/// Device/allocator errors.
pub fn repack(daemon: &PortusDaemon, reclaim_active: bool) -> PortusResult<RepackReport> {
    let index = daemon.index();
    let mut report = RepackReport::default();
    for (_hash, off) in index.live_entries()? {
        let mi = index.load_mindex(off)?;
        report.scanned_models += 1;
        let latest = mi.latest_done().map(|(i, _)| i);
        let job_complete = mi.flags & crate::FLAG_JOB_COMPLETE != 0;
        for (s, hdr) in mi.slots.iter().enumerate() {
            if hdr.data_off == 0 {
                continue; // already reclaimed
            }
            let is_latest_done = latest == Some(s);
            let reclaim = match hdr.state {
                SlotState::Done => job_complete && !is_latest_done,
                SlotState::Active => reclaim_active || job_complete,
                SlotState::Empty => job_complete,
            };
            if reclaim {
                let freed = free_slot_region(index, &mi, s)?;
                report.reclaimed_slots += 1;
                report.freed_bytes += freed;
                if hdr.state == SlotState::Active {
                    report.reclaimed_active += 1;
                }
            }
        }
    }
    Ok(report)
}

fn free_slot_region(index: &Index, mi: &crate::MIndex, slot: usize) -> PortusResult<u64> {
    let hdr = mi.slots[slot];
    let mut freed = 0;
    for a in index.allocator().live_allocations()? {
        if a.offset == hdr.data_off {
            freed = a.len;
            index.allocator().free(&a)?;
            break;
        }
    }
    index.clear_slot_region(mi, slot)?;
    Ok(freed)
}
