//! # portus
//!
//! The core of the reproduction: **Portus**, an efficient DNN
//! checkpointing system that moves model state between GPU memory and
//! remote persistent memory with **zero copies through host DRAM, zero
//! serialization, and zero kernel crossings** (ICDCS'24).
//!
//! * [`PortusClient`] — the training-framework extension: registers
//!   every tensor's GPU memory as an RDMA region and describes the
//!   model to the server over a TCP control channel.
//! * [`PortusDaemon`] — the user-space storage server: maintains the
//!   three-level persistent index ([`Index`]: ModelTable → MIndex →
//!   TensorData) on devdax PMem, mirrored in DRAM by the red-black
//!   [`ModelMap`], and serves checkpoints with one-sided RDMA READs and
//!   restores with one-sided WRITEs.
//! * Double-mapping crash consistency (§III-D2): two slots per model;
//!   at least one complete version always survives any crash.
//! * [`repack`] — the PMem space reclaimer.
//! * [`portusctl`] — view/dump/stats tooling over device images and
//!   metrics snapshots.
//! * Observability: every checkpoint/delta/restore records per-stage
//!   spans and latency histograms against the **virtual clock** (see
//!   [`portus_sim::Tracer`] / [`portus_sim::Metrics`]); a run exports
//!   as Chrome trace-event JSON, and [`PortusClient::stats`] queries
//!   the daemon's aggregate snapshot over the wire.
//!
//! # Examples
//!
//! The full register → train → checkpoint → crash → restore loop:
//!
//! ```
//! use portus::{DaemonConfig, PortusClient, PortusDaemon};
//! use portus_dnn::{test_spec, Materialization, ModelInstance};
//! use portus_mem::GpuDevice;
//! use portus_pmem::{PmemDevice, PmemMode};
//! use portus_rdma::{Fabric, NodeId};
//! use portus_sim::SimContext;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = SimContext::icdcs24();
//! let fabric = Fabric::new(ctx.clone());
//! let compute = fabric.add_nic(NodeId(0));
//! fabric.add_nic(NodeId(1));
//!
//! // Storage node: daemon over a devdax PMem namespace.
//! let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
//! let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default())?;
//!
//! // Compute node: a small model on the GPU.
//! let gpu = GpuDevice::new(ctx, 0, 1 << 30);
//! let spec = test_spec("toy", 4, 4096);
//! let mut model = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned)?;
//!
//! let client = PortusClient::connect(&daemon, compute);
//! client.register_model(&model)?;
//! model.train_step();
//! let saved = model.model_checksum();
//! client.checkpoint("toy")?; // one-sided pull, GPU -> PMem
//!
//! model.train_step(); // diverge past the checkpoint ...
//! client.restore(&model)?; // ... and pull it back, PMem -> GPU
//! assert_eq!(model.model_checksum(), saved);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod client;
mod daemon;
mod dedup;
mod error;
mod index;
mod model_map;
pub mod portusctl;
mod proto;
pub mod qos;
mod repack;
mod replica;

pub use catalog::{Catalog, CatalogConfig, CatalogStats};
pub use client::{CheckpointReport, DeltaReport, PendingCheckpoint, PortusClient, RestoreReport};
pub use daemon::{ClientEndpoints, DaemonConfig, PortusDaemon};
pub use dedup::DedupConfig;
pub use error::{PortusError, PortusResult, ShardFailure, VerbFailure};
pub use index::{
    combine_digests, name_hash, region_digest, Index, MIndex, SlotHeader, SlotState, TensorRecord,
    CKSUM_KIND_DIGEST, CKSUM_KIND_FNV, FLAG_JOB_COMPLETE, SLOT_COUNT,
};
pub use model_map::{Iter, ModelMap};
pub use proto::{ModelSummary, Reply, Request, TensorDesc};
pub use qos::{QosConfig, TenantQos, TokenBucket};
pub use repack::{repack, RepackReport};
pub use replica::{ReplicatedCheckpoint, ReplicatedClient};
