//! Multi-tenant quality of service: token-bucket admission control and
//! weighted-fair lane arbitration.
//!
//! The daemon serves many tenants over one dispatch pool, one PMem
//! device, and one set of lane-pinned queue pairs. Without policy, a
//! bursty tenant monopolizes all three. This module adds the two
//! mechanisms DESIGN.md §17 describes:
//!
//! * [`TokenBucket`] — per-tenant bytes/sec and ops/sec budgets,
//!   refilled on the **virtual clock** so deterministic runs admit and
//!   shed identically. Over-budget checkpoint requests are shed with a
//!   typed [`crate::PortusError::Throttled`] carrying a `retry_after`
//!   hint computed from the bucket's exact deficit.
//! * `LaneArbiter` (crate-internal) — weighted deficit-round-robin over the striped
//!   datapath's QP lanes: each tenant may claim at most its weighted
//!   share of lanes while other tenants are active, and lane selection
//!   prefers the lanes a tenant has charged the least weighted bytes
//!   to, so a heavy tenant cannot pin every NIC engine.
//!
//! Restores bypass the buckets entirely (they are latency-critical
//! recovery traffic) and ride the dispatch pool's urgent class instead.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use portus_sim::{SimDuration, SimTime};

/// Nanoseconds per second — the fixed-point scale of bucket balances.
const NS_PER_SEC: i128 = 1_000_000_000;

/// Per-tenant QoS parameters. A rate of `0` means *unlimited* for that
/// dimension; a burst of `0` defaults to one second's worth of the
/// rate. Weights steer the lane arbiter and must be at least 1 (a `0`
/// is treated as 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantQos {
    /// Admitted checkpoint payload bytes per virtual second
    /// (`0` = unlimited).
    pub bytes_per_sec: u64,
    /// Admitted checkpoint operations per virtual second
    /// (`0` = unlimited).
    pub ops_per_sec: u64,
    /// Byte-bucket capacity (`0` = one second of `bytes_per_sec`).
    pub burst_bytes: u64,
    /// Op-bucket capacity (`0` = one second of `ops_per_sec`).
    pub burst_ops: u64,
    /// Weighted-fair share of the striped datapath's QP lanes.
    pub weight: u32,
}

impl Default for TenantQos {
    fn default() -> Self {
        TenantQos {
            bytes_per_sec: 0,
            ops_per_sec: 0,
            burst_bytes: 0,
            burst_ops: 0,
            weight: 1,
        }
    }
}

impl TenantQos {
    /// A tenant capped at `bytes_per_sec` checkpoint payload bytes per
    /// virtual second (ops unlimited, default weight).
    pub fn limited_bytes(bytes_per_sec: u64) -> TenantQos {
        TenantQos {
            bytes_per_sec,
            ..TenantQos::default()
        }
    }

    /// The effective (non-zero) lane weight.
    pub fn lane_weight(&self) -> u32 {
        self.weight.max(1)
    }
}

/// Daemon-wide QoS configuration: a default profile plus per-tenant
/// overrides keyed by tenant name. The all-default configuration is
/// policy-free — every tenant is unlimited with weight 1, and the
/// daemon behaves exactly as it did before QoS existed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QosConfig {
    /// Profile applied to tenants without an explicit entry.
    pub default_tenant: TenantQos,
    /// Per-tenant overrides.
    pub tenants: BTreeMap<String, TenantQos>,
}

impl QosConfig {
    /// The profile governing `tenant`.
    pub fn for_tenant(&self, tenant: &str) -> &TenantQos {
        self.tenants.get(tenant).unwrap_or(&self.default_tenant)
    }
}

/// A deterministic token bucket refilled on the virtual clock.
///
/// The balance is kept in fixed-point token-nanoseconds (`tokens ×
/// 10⁹`), so refills of `elapsed_ns × rate` lose no fractional tokens
/// and identical `(amount, instant)` sequences always produce identical
/// admit/shed decisions — the property the determinism test in
/// `tests/multi_tenant.rs` pins.
///
/// Admission is debt-based: a request is admitted whenever the balance
/// is positive and then charged in full, letting the balance go
/// negative. Oversized requests (larger than the burst) therefore still
/// pass eventually, and the *long-run* admitted rate is capped at
/// exactly `rate_per_sec` either way.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst_scaled: i128,
    balance_scaled: i128,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket admitting `rate_per_sec` tokens per virtual second with
    /// capacity `burst` (`0` = one second of the rate), starting full.
    /// A zero rate means unlimited: every `try_take` succeeds.
    pub fn new(rate_per_sec: u64, burst: u64) -> TokenBucket {
        let burst = if burst == 0 { rate_per_sec } else { burst };
        let burst_scaled = burst as i128 * NS_PER_SEC;
        TokenBucket {
            rate_per_sec,
            burst_scaled,
            balance_scaled: burst_scaled,
            last_refill: SimTime::ZERO,
        }
    }

    /// Refills tokens accrued between `last_refill` and `now`. The
    /// clock is monotone; a stale `now` (possible when two threads race
    /// the shared clock) is simply ignored.
    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill);
        if elapsed.is_zero() {
            return;
        }
        self.balance_scaled = (self.balance_scaled
            + elapsed.as_nanos() as i128 * self.rate_per_sec as i128)
            .min(self.burst_scaled);
        self.last_refill = self.last_refill.max(now);
    }

    /// Takes `amount` tokens at virtual instant `now`, or reports how
    /// long the caller should wait before the bucket turns positive
    /// again.
    ///
    /// # Errors
    ///
    /// The exact virtual duration until the balance becomes positive at
    /// the configured rate (the `retry_after` hint of
    /// [`crate::PortusError::Throttled`]).
    pub fn try_take(&mut self, amount: u64, now: SimTime) -> Result<(), SimDuration> {
        if self.rate_per_sec == 0 {
            return Ok(());
        }
        self.refill(now);
        if self.balance_scaled > 0 {
            self.balance_scaled -= amount as i128 * NS_PER_SEC;
            Ok(())
        } else {
            // Nanoseconds until the balance exceeds zero: the deficit
            // (plus the one fixed-point unit that tips it positive)
            // divided by the refill rate, rounded up.
            let deficit = 1 - self.balance_scaled;
            let rate = self.rate_per_sec as i128;
            let wait_ns = (deficit + rate - 1) / rate;
            Err(SimDuration::from_nanos(wait_ns.min(u64::MAX as i128) as u64))
        }
    }

    /// Whole tokens currently available (clamped at zero while the
    /// bucket is in debt). Diagnostic / test surface.
    pub fn available(&self) -> u64 {
        (self.balance_scaled.max(0) / NS_PER_SEC) as u64
    }
}

/// Both budgets of one tenant, charged atomically: an admitted request
/// debits ops *and* bytes; a shed request debits neither.
#[derive(Debug)]
struct TenantBuckets {
    bytes: TokenBucket,
    ops: TokenBucket,
}

/// The identity a connection's requests are attributed to: the tenant
/// name (shared, never re-allocated per request) and its lane weight.
#[derive(Debug, Clone)]
pub(crate) struct TenantCtx {
    pub(crate) name: Arc<str>,
    pub(crate) weight: u32,
}

/// Daemon-side admission state: lazily created per-tenant bucket pairs
/// plus the shared lane arbiter.
#[derive(Debug)]
pub(crate) struct QosState {
    cfg: QosConfig,
    buckets: Mutex<HashMap<Arc<str>, Arc<Mutex<TenantBuckets>>>>,
    pub(crate) arbiter: LaneArbiter,
}

impl QosState {
    pub(crate) fn new(cfg: QosConfig) -> QosState {
        QosState {
            cfg,
            buckets: Mutex::new(HashMap::new()),
            arbiter: LaneArbiter::default(),
        }
    }

    pub(crate) fn tenant_ctx(&self, tenant: &str) -> TenantCtx {
        TenantCtx {
            name: Arc::from(tenant),
            weight: self.cfg.for_tenant(tenant).lane_weight(),
        }
    }

    /// Admits or sheds one checkpoint request of `bytes` payload bytes
    /// at virtual instant `now`. Both buckets must be positive; an
    /// admitted request is charged against both, a shed request against
    /// neither, and the returned wait is the larger of the two buckets'
    /// own `retry_after` hints.
    pub(crate) fn admit(
        &self,
        tenant: &TenantCtx,
        bytes: u64,
        now: SimTime,
    ) -> Result<(), SimDuration> {
        let q = self.cfg.for_tenant(&tenant.name);
        if q.bytes_per_sec == 0 && q.ops_per_sec == 0 {
            return Ok(());
        }
        let buckets = Arc::clone(
            self.buckets
                .lock()
                .entry(Arc::clone(&tenant.name))
                .or_insert_with(|| {
                    Arc::new(Mutex::new(TenantBuckets {
                        bytes: TokenBucket::new(q.bytes_per_sec, q.burst_bytes),
                        ops: TokenBucket::new(q.ops_per_sec, q.burst_ops),
                    }))
                }),
        );
        let mut b = buckets.lock();
        // Probe both before charging either: a request shed on bytes
        // must not burn an op token.
        let ops_wait = b.ops.try_take(0, now).err();
        let bytes_wait = b.bytes.try_take(0, now).err();
        match (ops_wait, bytes_wait) {
            (None, None) => {
                let _ = b.ops.try_take(1, now);
                let _ = b.bytes.try_take(bytes, now);
                Ok(())
            }
            (o, w) => Err(o
                .unwrap_or(SimDuration::ZERO)
                .max(w.unwrap_or(SimDuration::ZERO))),
        }
    }
}

/// How many active-op registrations and what weight a tenant currently
/// holds on the arbiter.
#[derive(Debug)]
struct ActiveTenant {
    weight: u32,
    ops: u32,
}

#[derive(Debug, Default)]
struct ArbiterInner {
    /// Cumulative weighted-byte charge per lane (the DRR deficit
    /// counters): `bytes × 1024 / weight`, so a weight-2 tenant charges
    /// half as much per byte and earns twice the share before the
    /// arbiter steers it away from a lane.
    lane_charge: Vec<u128>,
    active: HashMap<Arc<str>, ActiveTenant>,
}

/// Weighted deficit-round-robin arbitration over the striped datapath's
/// QP lanes. See the module docs; the single-QP datapath never consults
/// it, and a lone active tenant is always allowed every lane — which
/// keeps the pre-QoS striping behaviour bit-for-bit.
#[derive(Debug, Default)]
pub(crate) struct LaneArbiter {
    inner: Mutex<ArbiterInner>,
}

/// RAII registration of one in-flight datapath operation; dropping it
/// releases the tenant's claim on the arbiter.
pub(crate) struct ActiveOp<'a> {
    arbiter: &'a LaneArbiter,
    tenant: Arc<str>,
}

impl Drop for ActiveOp<'_> {
    fn drop(&mut self) {
        let mut inner = self.arbiter.inner.lock();
        if let Some(a) = inner.active.get_mut(&self.tenant) {
            a.ops -= 1;
            if a.ops == 0 {
                inner.active.remove(&self.tenant);
            }
        }
    }
}

impl LaneArbiter {
    /// Registers one in-flight operation of `tenant` for the guard's
    /// lifetime; concurrent registrations of other tenants shrink each
    /// other's lane quotas.
    pub(crate) fn op_guard<'a>(&'a self, tenant: &TenantCtx) -> ActiveOp<'a> {
        let mut inner = self.inner.lock();
        inner
            .active
            .entry(Arc::clone(&tenant.name))
            .and_modify(|a| a.ops += 1)
            .or_insert(ActiveTenant {
                weight: tenant.weight,
                ops: 1,
            });
        ActiveOp {
            arbiter: self,
            tenant: Arc::clone(&tenant.name),
        }
    }

    /// The lanes `tenant` may stripe across right now, ascending.
    ///
    /// Quota: `max(1, lanes × weight / Σ active weights)` — a lone
    /// tenant gets every lane; concurrent tenants split them by weight.
    /// Within the quota, the lanes this tenant's weighted traffic has
    /// charged the least are picked (ties break on lane index), so
    /// repeated heavy operations rotate across the NIC engines instead
    /// of camping on lane 0.
    pub(crate) fn allowed_lanes(&self, tenant: &TenantCtx, lanes: usize) -> Vec<usize> {
        let mut inner = self.inner.lock();
        if inner.lane_charge.len() < lanes {
            inner.lane_charge.resize(lanes, 0);
        }
        let total: u64 = inner.active.values().map(|a| a.weight as u64).sum();
        let mine = inner
            .active
            .get(&tenant.name)
            .map_or(tenant.weight as u64, |a| a.weight as u64);
        let quota = if total <= mine {
            lanes
        } else {
            ((lanes as u64 * mine / total) as usize).max(1)
        };
        if quota >= lanes {
            return (0..lanes).collect();
        }
        let mut by_charge: Vec<usize> = (0..lanes).collect();
        by_charge.sort_by_key(|&l| (inner.lane_charge[l], l));
        let mut allowed: Vec<usize> = by_charge.into_iter().take(quota).collect();
        allowed.sort_unstable();
        allowed
    }

    /// Charges `bytes` of `tenant` traffic to `lane`'s deficit counter.
    pub(crate) fn charge(&self, tenant: &TenantCtx, lane: usize, bytes: u64) {
        let mut inner = self.inner.lock();
        if inner.lane_charge.len() <= lane {
            inner.lane_charge.resize(lane + 1, 0);
        }
        inner.lane_charge[lane] += bytes as u128 * 1024 / tenant.weight.max(1) as u128;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_bucket_always_admits() {
        let mut b = TokenBucket::new(0, 0);
        for i in 0..100u64 {
            assert!(b.try_take(u64::MAX / 2, SimTime::from_nanos(i)).is_ok());
        }
    }

    #[test]
    fn bucket_caps_rate_and_reports_exact_retry() {
        // 1000 tokens/sec, burst 1000, starting full.
        let mut b = TokenBucket::new(1000, 0);
        assert_eq!(b.available(), 1000);
        assert!(b.try_take(1000, SimTime::ZERO).is_ok());
        // Balance is now exactly 0 — not positive, so the next take is
        // shed and must wait one fixed-point unit: ceil(1 / 1000) ns.
        let wait = b.try_take(1, SimTime::ZERO).unwrap_err();
        assert_eq!(wait.as_nanos(), 1);
        // After the hinted wait the bucket admits again.
        let now = SimTime::ZERO + wait;
        assert!(b.try_take(1, now).is_ok());
    }

    #[test]
    fn debt_admits_oversized_requests_at_the_long_run_rate() {
        // Burst 10, but a 1000-token request arrives: admitted (the
        // balance is positive), then the bucket owes ~1 second at
        // 1000/sec before anything else passes.
        let mut b = TokenBucket::new(1000, 10);
        assert!(b.try_take(1000, SimTime::ZERO).is_ok());
        let wait = b.try_take(1, SimTime::ZERO).unwrap_err();
        // Deficit is 990 tokens → 990ms + one fixed-point tick.
        assert_eq!(wait.as_nanos(), 990_000_001);
        assert!(b.try_take(1, SimTime::ZERO + wait).is_ok());
    }

    #[test]
    fn refill_loses_no_fractional_tokens() {
        // 3 tokens/sec: a 1ns refill is worth 3e-9 tokens — invisible
        // in whole tokens but never lost. A million single-ns refills
        // accrue exactly the same balance as one big refill.
        let mut a = TokenBucket::new(3, 3);
        let mut c = TokenBucket::new(3, 3);
        assert!(a.try_take(3, SimTime::ZERO).is_ok());
        assert!(c.try_take(3, SimTime::ZERO).is_ok());
        for i in 1..=1_000_000u64 {
            a.refill(SimTime::from_nanos(i));
        }
        c.refill(SimTime::from_nanos(1_000_000));
        assert_eq!(a.balance_scaled, c.balance_scaled);
    }

    #[test]
    fn qos_config_resolves_overrides() {
        let mut cfg = QosConfig::default();
        cfg.tenants
            .insert("noisy".into(), TenantQos::limited_bytes(1 << 20));
        assert_eq!(cfg.for_tenant("noisy").bytes_per_sec, 1 << 20);
        assert_eq!(cfg.for_tenant("anyone-else").bytes_per_sec, 0);
        assert_eq!(cfg.for_tenant("noisy").lane_weight(), 1);
    }

    #[test]
    fn admit_charges_both_buckets_or_neither() {
        let mut cfg = QosConfig::default();
        cfg.tenants.insert(
            "t".into(),
            TenantQos {
                bytes_per_sec: 1000,
                ops_per_sec: 2,
                ..TenantQos::default()
            },
        );
        let qos = QosState::new(cfg);
        let t = qos.tenant_ctx("t");
        assert!(qos.admit(&t, 500, SimTime::ZERO).is_ok());
        assert!(qos.admit(&t, 500, SimTime::ZERO).is_ok());
        // Op bucket exhausted: shed, with a non-zero wait hint.
        let wait = qos.admit(&t, 1, SimTime::ZERO).unwrap_err();
        assert!(!wait.is_zero());
        // The shed request burned no byte tokens: after the op bucket
        // refills, the byte bucket still has its remaining budget.
        let later = SimTime::ZERO + wait;
        assert!(qos.admit(&t, 1, later).is_ok());
    }

    #[test]
    fn lone_tenant_gets_every_lane() {
        let arb = LaneArbiter::default();
        let t = TenantCtx {
            name: Arc::from("solo"),
            weight: 1,
        };
        let _op = arb.op_guard(&t);
        assert_eq!(arb.allowed_lanes(&t, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_tenants_split_lanes_by_weight() {
        let arb = LaneArbiter::default();
        let heavy = TenantCtx {
            name: Arc::from("heavy"),
            weight: 3,
        };
        let light = TenantCtx {
            name: Arc::from("light"),
            weight: 1,
        };
        let _h = arb.op_guard(&heavy);
        let _l = arb.op_guard(&light);
        // 8 lanes, weights 3:1 → quotas 6 and 2.
        assert_eq!(arb.allowed_lanes(&heavy, 8).len(), 6);
        assert_eq!(arb.allowed_lanes(&light, 8).len(), 2);
        // Quota never rounds to zero.
        assert_eq!(arb.allowed_lanes(&light, 2).len(), 1);
    }

    #[test]
    fn charge_steers_selection_to_cold_lanes() {
        let arb = LaneArbiter::default();
        let a = TenantCtx {
            name: Arc::from("a"),
            weight: 1,
        };
        let b = TenantCtx {
            name: Arc::from("b"),
            weight: 1,
        };
        let _ga = arb.op_guard(&a);
        let _gb = arb.op_guard(&b);
        // Tenant a has hammered lanes 0 and 1; its half-quota now
        // prefers the cold lanes 2 and 3.
        arb.charge(&a, 0, 1 << 20);
        arb.charge(&a, 1, 1 << 20);
        assert_eq!(arb.allowed_lanes(&a, 4), vec![2, 3]);
    }

    #[test]
    fn dropping_the_guard_releases_the_claim() {
        let arb = LaneArbiter::default();
        let a = TenantCtx {
            name: Arc::from("a"),
            weight: 1,
        };
        let b = TenantCtx {
            name: Arc::from("b"),
            weight: 1,
        };
        let ga = arb.op_guard(&a);
        let _gb = arb.op_guard(&b);
        assert_eq!(arb.allowed_lanes(&b, 4).len(), 2);
        drop(ga);
        assert_eq!(arb.allowed_lanes(&b, 4).len(), 4);
    }
}
