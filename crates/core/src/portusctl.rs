//! `portusctl`: manage and share checkpoints stored on a PMem device
//! (§IV-b).
//!
//! Researchers share checkpoints in portable formats; `portusctl view
//! DEVICE` lists every model on a device image, and `portusctl dump
//! DEVICE MODEL FILE` serializes a PMem-resident checkpoint into the
//! portable container of [`portus_format`] — the only place Portus ever
//! serializes, and it happens offline. `portusctl stats SNAPSHOT.json`
//! renders a [`MetricsSnapshot`] (as exported by the daemon's `Stats`
//! request) into a per-stage latency table.

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use portus_format::{write_checkpoint, CheckpointEntry, PayloadSource};
use portus_pmem::load_image;
use portus_sim::{MetricsSnapshot, SimContext, SimDuration};

use crate::proto::ModelSummary;
use crate::{Index, ModelMap, PortusError, PortusResult};

/// Result of a `portusctl dump`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpReport {
    /// The dumped model.
    pub model: String,
    /// The version that was dumped (latest complete).
    pub version: u64,
    /// Payload bytes written.
    pub bytes: u64,
    /// Number of tensors.
    pub tensors: usize,
}

fn open_index(image: &Path) -> PortusResult<(Index, ModelMap)> {
    let dev = load_image(SimContext::icdcs24(), image)?;
    Index::recover(dev)
}

/// `portusctl view DEVICE`: lists all models stored on the device image
/// at `image`.
///
/// # Errors
///
/// Image/recovery failures.
pub fn view(image: &Path) -> PortusResult<Vec<ModelSummary>> {
    let (index, map) = open_index(image)?;
    let mut out = Vec::with_capacity(map.len());
    for (name, off) in map.iter() {
        let mi = index.load_mindex(off)?;
        out.push(ModelSummary {
            name: name.to_string(),
            layers: mi.tensors.len() as u32,
            bytes: mi.total_bytes,
            latest_version: mi.latest_done().map(|(_, s)| s.version),
            valid_versions: mi.valid_versions(),
            done_versions: mi.done_versions(),
            complete: mi.flags & crate::FLAG_JOB_COMPLETE != 0,
        });
    }
    Ok(out)
}

/// `portusctl dump DEVICE MODEL FILE`: extracts the latest complete
/// checkpoint of `model` from the device image into a portable
/// container at `out`.
///
/// # Errors
///
/// [`PortusError::ModelNotFound`] / [`PortusError::NoValidCheckpoint`]
/// when the model or a complete version is missing, plus image and
/// container errors.
pub fn dump(image: &Path, model: &str, out: &Path) -> PortusResult<DumpReport> {
    let (index, map) = open_index(image)?;
    let off = map
        .get(model)
        .ok_or_else(|| PortusError::ModelNotFound(model.to_string()))?;
    let mi = index.load_mindex(off)?;
    let (_slot, hdr) = mi
        .latest_done()
        .ok_or_else(|| PortusError::NoValidCheckpoint(model.to_string()))?;

    let mut entries = Vec::with_capacity(mi.tensors.len());
    for rec in &mi.tensors {
        let len = rec.meta.size_bytes();
        let mut payload = vec![0u8; len as usize];
        index
            .device()
            .read(hdr.data_off + rec.rel_off, &mut payload)?;
        entries.push(CheckpointEntry {
            meta: rec.meta.clone(),
            data: PayloadSource::Bytes(payload),
        });
    }
    // This is the one serialization Portus performs, and it is offline
    // (§VI, lesson 2).
    portus_format::charge_serialize(index.device().ctx(), mi.total_bytes);
    let file = File::create(out)?;
    write_checkpoint(BufWriter::new(file), model, &entries)?;
    Ok(DumpReport {
        model: model.to_string(),
        version: hdr.version,
        bytes: mi.total_bytes,
        tensors: mi.tensors.len(),
    })
}

/// Renders summaries as the table `portusctl view` prints.
pub fn render_view(models: &[ModelSummary]) -> String {
    let mut out = String::from(
        "MODEL                                    LAYERS      BYTES  LATEST  VALID  COMPLETE\n",
    );
    for m in models {
        out.push_str(&format!(
            "{:<40} {:>6} {:>10}  {:>6}  {:>5}  {}\n",
            m.name,
            m.layers,
            m.bytes,
            m.latest_version
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            m.valid_versions,
            if m.complete { "yes" } else { "no" },
        ));
    }
    out
}

/// Parses a metrics snapshot from its JSON serialization (the payload
/// the daemon's `Stats` reply serializes to, written to a file by
/// tooling or a bench run).
///
/// # Errors
///
/// [`PortusError::Io`] on read failures; [`PortusError::Daemon`] on
/// malformed JSON.
pub fn load_stats(path: &Path) -> PortusResult<MetricsSnapshot> {
    let raw = std::fs::read_to_string(path)?;
    serde_json::from_str(&raw)
        .map_err(|e| PortusError::Daemon(format!("malformed metrics snapshot: {e}")))
}

/// Renders a metrics snapshot as the table `portusctl stats` prints:
/// one row per `(op, stage)` histogram with count, total, mean, and
/// derived p50/p95/p99/max (all virtual time), plus the dispatch-queue
/// gauges.
pub fn render_stats(snapshot: &MetricsSnapshot) -> String {
    let ns = |v: u64| SimDuration::from_nanos(v).to_string();
    let mut out = String::from(
        "OP               STAGE               COUNT        TOTAL         MEAN          P50          P95          P99          MAX\n",
    );
    for s in &snapshot.stages {
        out.push_str(&format!(
            "{:<16} {:<16} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            s.op.name(),
            s.stage.name(),
            s.hist.count,
            ns(s.hist.total_ns),
            ns(s.hist.mean_ns()),
            ns(s.hist.p50()),
            ns(s.hist.p95()),
            ns(s.hist.p99()),
            ns(s.hist.max_ns),
        ));
    }
    out.push_str(&format!(
        "dispatch queue: depth {} / peak {} / capacity {}\n",
        snapshot.dispatch_queue_depth,
        snapshot.dispatch_queue_peak,
        snapshot.dispatch_queue_capacity,
    ));
    out.push_str(&format!(
        "rollback failures: {}\n",
        snapshot.rollback_failures
    ));
    if !snapshot.fleet.is_empty() {
        out.push_str(&format!(
            "FLEET  (recovery epoch {}, restore failovers {})\n",
            snapshot.recovery_epoch, snapshot.restore_failovers,
        ));
        out.push_str(
            "DAEMON     WRITES        BYTES  REPLICA  FENCED  REPAIRS-IN  REPAIR-BYTES  REBALANCED  KILLED\n",
        );
        for d in &snapshot.fleet {
            out.push_str(&format!(
                "{:<8} {:>8} {:>12} {:>8} {:>7} {:>11} {:>13} {:>11}  {}\n",
                d.daemon,
                d.writes,
                d.bytes,
                d.replica_writes,
                d.fenced_active,
                d.repairs_in,
                d.repair_bytes,
                d.rebalanced_in,
                if d.killed { "yes" } else { "no" },
            ));
        }
    }
    out
}

/// Renders the multi-tenant view `portusctl tenants` prints: one row
/// per tenant with its admission counters (admitted/throttled/shed and
/// admitted bytes) and the p50/p99 of its checkpoint and restore
/// end-to-end latency histograms (virtual time, dispatch wait
/// included).
pub fn render_tenants(snapshot: &MetricsSnapshot) -> String {
    let ns = |v: u64| SimDuration::from_nanos(v).to_string();
    let mut out = String::from(
        "TENANT                   ADMITTED  THROTTLED   SHED        BYTES      CKPT-P50      CKPT-P99       RST-P50       RST-P99\n",
    );
    for t in &snapshot.tenants {
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>6} {:>12} {:>13} {:>13} {:>13} {:>13}\n",
            t.tenant,
            t.admitted_ops,
            t.throttled_ops,
            t.shed_ops,
            t.admitted_bytes,
            ns(t.checkpoint.p50()),
            ns(t.checkpoint.p99()),
            ns(t.restore.p50()),
            ns(t.restore.p99()),
        ));
    }
    if snapshot.tenants.is_empty() {
        out.push_str("(no tenant-attributed requests recorded)\n");
    }
    out
}

/// Renders the space-management view `portusctl space` prints: the
/// PMem free/used gauges, the largest contiguous extent, the derived
/// fragmentation ratio, the repacker's lifetime reclaim counters, and
/// (when a dedup tier is active) the content-addressed extent store's
/// sharing/compression gauges.
pub fn render_space(snapshot: &MetricsSnapshot) -> String {
    let frag = snapshot.fragmentation_permille();
    let mut out = String::from("PMEM SPACE\n");
    out.push_str(&format!(
        "  free bytes           {:>16}\n",
        snapshot.pmem_free_bytes
    ));
    out.push_str(&format!(
        "  used bytes           {:>16}\n",
        snapshot.pmem_used_bytes
    ));
    out.push_str(&format!(
        "  largest free extent  {:>16}\n",
        snapshot.pmem_largest_free_extent
    ));
    out.push_str(&format!(
        "  fragmentation        {:>13}.{}%\n",
        frag / 10,
        frag % 10
    ));
    out.push_str("REPACKER\n");
    out.push_str(&format!(
        "  passes               {:>16}\n",
        snapshot.repack_passes
    ));
    out.push_str(&format!(
        "  reclaimed slots      {:>16}\n",
        snapshot.reclaimed_slots
    ));
    out.push_str(&format!(
        "  reclaimed bytes      {:>16}\n",
        snapshot.reclaimed_bytes
    ));
    if snapshot.dedup_live_extents > 0 || snapshot.dedup_chunks > 0 {
        let ratio = snapshot.dedup_ratio_permille();
        out.push_str("DEDUP\n");
        out.push_str(&format!(
            "  live extents         {:>16}\n",
            snapshot.dedup_live_extents
        ));
        out.push_str(&format!(
            "  shared extents       {:>16}\n",
            snapshot.dedup_shared_extents
        ));
        out.push_str(&format!(
            "  compressed extents   {:>16}\n",
            snapshot.dedup_compressed_extents
        ));
        out.push_str(&format!(
            "  logical bytes        {:>16}\n",
            snapshot.dedup_logical_bytes
        ));
        out.push_str(&format!(
            "  stored bytes         {:>16}\n",
            snapshot.dedup_stored_bytes
        ));
        out.push_str(&format!(
            "  physical/logical     {:>13}.{}%\n",
            ratio / 10,
            ratio % 10
        ));
        out.push_str(&format!(
            "  chunks deduplicated  {:>8} of {:>5}\n",
            snapshot.dedup_shared_chunks, snapshot.dedup_chunks
        ));
        out.push_str(&format!(
            "  swept extents        {:>16}\n",
            snapshot.swept_extents
        ));
        out.push_str(&format!(
            "  ingest failures      {:>16}\n",
            snapshot.dedup_ingest_failures
        ));
    }
    out
}

/// Renders the model-catalog view `portusctl catalog` prints: the
/// paged on-PMem catalog's page/entry counts, the DRAM page cache's
/// hit/miss counters and clamped footprint, and the ModelMap mirror's
/// DRAM bytes — side by side, so an operator can see what enabling the
/// catalog bought (mirror pinned at ~0) or what it would buy (mirror
/// growing with the model population).
pub fn render_catalog(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("MODEL CATALOG\n");
    out.push_str(&format!(
        "  micro-pages          {:>16}\n",
        snapshot.catalog_pages
    ));
    out.push_str(&format!(
        "  entries              {:>16}\n",
        snapshot.catalog_entries
    ));
    let probes = snapshot.catalog_cache_hits + snapshot.catalog_cache_misses;
    let hit_permille = if probes == 0 {
        0
    } else {
        (snapshot.catalog_cache_hits as u128 * 1000 / probes as u128) as u64
    };
    out.push_str("PAGE CACHE (DRAM, clamped)\n");
    out.push_str(&format!(
        "  hits                 {:>16}\n",
        snapshot.catalog_cache_hits
    ));
    out.push_str(&format!(
        "  misses               {:>16}\n",
        snapshot.catalog_cache_misses
    ));
    out.push_str(&format!(
        "  hit rate             {:>13}.{}%\n",
        hit_permille / 10,
        hit_permille % 10
    ));
    out.push_str(&format!(
        "  cached bytes         {:>16}\n",
        snapshot.catalog_cache_bytes
    ));
    out.push_str("MODELMAP MIRROR (DRAM, unbounded)\n");
    out.push_str(&format!(
        "  bytes                {:>16}\n",
        snapshot.model_map_bytes
    ));
    if snapshot.catalog_pages == 0 && snapshot.catalog_entries == 0 {
        out.push_str("(no catalog gauges recorded — daemon runs on the ModelMap mirror)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_sim::{Metrics, Stage, TraceOp};

    #[test]
    fn render_view_formats_rows() {
        let rows = vec![ModelSummary {
            name: "bert".into(),
            layers: 396,
            bytes: 1024,
            latest_version: Some(3),
            valid_versions: 2,
            done_versions: vec![2, 3],
            complete: true,
        }];
        let s = render_view(&rows);
        assert!(s.contains("bert"));
        assert!(s.contains("396"));
        assert!(s.contains("yes"));
    }

    #[test]
    fn view_missing_image_errors() {
        assert!(view(Path::new("/nonexistent/portus.img")).is_err());
    }

    #[test]
    fn render_stats_formats_histograms_and_gauges() {
        let m = Metrics::new();
        m.set_queue_capacity(64);
        m.record_stage(
            TraceOp::Checkpoint,
            Stage::Persist,
            SimDuration::from_micros(120),
        );
        m.record_stage(
            TraceOp::Checkpoint,
            Stage::Persist,
            SimDuration::from_micros(250),
        );
        let s = render_stats(&m.snapshot());
        assert!(s.contains("checkpoint"));
        assert!(s.contains("persist"));
        assert!(s.contains("capacity 64"));
        // Count column shows the two samples.
        assert!(s.contains(" 2 "));
    }

    #[test]
    fn render_stats_surfaces_rollback_failures_and_fleet() {
        let m = Metrics::new();
        m.record_rollback_failure();
        let mut snap = m.snapshot();
        let s = render_stats(&snap);
        assert!(s.contains("rollback failures: 1"));
        assert!(!s.contains("FLEET"));

        snap.recovery_epoch = 2;
        snap.restore_failovers = 3;
        snap.fleet = vec![portus_sim::DaemonFleetStats {
            daemon: 1,
            writes: 4,
            bytes: 1024,
            replica_writes: 2,
            fenced_active: 1,
            repairs_in: 5,
            repair_bytes: 2048,
            rebalanced_in: 1,
            killed: true,
        }];
        let s = render_stats(&snap);
        assert!(s.contains("FLEET  (recovery epoch 2, restore failovers 3)"));
        assert!(s.contains("REPAIR-BYTES"));
        assert!(s.contains("2048"));
        assert!(s.trim_end().ends_with("yes"));
    }

    #[test]
    fn render_tenants_formats_rows_and_empty_note() {
        let m = Metrics::new();
        let empty = render_tenants(&m.snapshot());
        assert!(empty.contains("no tenant-attributed requests"));

        m.tenant_admitted("team-a", 4096);
        m.tenant_throttled("team-a");
        m.tenant_shed("team-a");
        m.record_tenant_op("team-a", TraceOp::Checkpoint, SimDuration::from_micros(100));
        m.record_tenant_op("team-a", TraceOp::Restore, SimDuration::from_micros(7));
        let s = render_tenants(&m.snapshot());
        assert!(s.contains("team-a"));
        assert!(s.contains("4096"));
        assert!(s.contains("THROTTLED"));
        assert!(!s.contains("no tenant-attributed requests"));
    }

    #[test]
    fn render_space_reports_gauges_and_fragmentation() {
        let m = Metrics::new();
        m.set_space(1000, 3000, 250);
        m.record_reclaimed(8192);
        m.record_repack_pass();
        let s = render_space(&m.snapshot());
        assert!(s.contains("free bytes"));
        assert!(s.contains("1000"));
        assert!(s.contains("3000"));
        assert!(s.contains("250"));
        // 750 permille renders as 75.0%.
        assert!(s.contains("75.0%"));
        assert!(s.contains("reclaimed bytes"));
        assert!(s.contains("8192"));
        // The dedup section is hidden until a dedup tier records.
        assert!(!s.contains("DEDUP"));
    }

    #[test]
    fn render_space_includes_dedup_when_active() {
        let m = Metrics::new();
        m.set_space(1000, 3000, 250);
        m.set_dedup(10, 4, 1, 1 << 20, 256 << 10);
        m.record_dedup_ingest(64, 48);
        m.record_swept_extents(2, 8192);
        let s = render_space(&m.snapshot());
        assert!(s.contains("DEDUP"));
        assert!(s.contains("live extents"));
        // 256 KiB stored over 1 MiB logical renders as 25.0%.
        assert!(s.contains("25.0%"));
        assert!(s.contains("48"), "shared chunk count shown");
        assert!(s.contains("swept extents"));
    }

    #[test]
    fn render_catalog_reports_gauges_and_hit_rate() {
        let m = Metrics::new();
        m.set_catalog(12, 3000, 75, 25, 48 << 10);
        m.set_model_map_bytes(0);
        let s = render_catalog(&m.snapshot());
        assert!(s.contains("MODEL CATALOG"));
        assert!(s.contains("3000"));
        // 75 hits over 100 probes renders as 75.0%.
        assert!(s.contains("75.0%"));
        assert!(s.contains("MODELMAP MIRROR"));
        assert!(!s.contains("no catalog gauges recorded"));
    }

    #[test]
    fn render_catalog_notes_modelmap_only_daemons() {
        let m = Metrics::new();
        m.set_model_map_bytes(4096);
        let s = render_catalog(&m.snapshot());
        assert!(s.contains("no catalog gauges recorded"));
        assert!(s.contains("4096"));
    }

    #[test]
    fn stats_snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.record_stage(TraceOp::Restore, Stage::Total, SimDuration::from_millis(3));
        let snapshot = m.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serialize");
        let dir = std::env::temp_dir().join("portusctl-stats-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("snapshot.json");
        std::fs::write(&path, &json).expect("write");
        let loaded = load_stats(&path).expect("load");
        assert_eq!(loaded, snapshot);
        assert!(load_stats(&dir.join("missing.json")).is_err());
        std::fs::write(&path, "{not json").expect("write");
        assert!(matches!(load_stats(&path), Err(PortusError::Daemon(_))));
    }
}
