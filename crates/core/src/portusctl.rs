//! `portusctl`: manage and share checkpoints stored on a PMem device
//! (§IV-b).
//!
//! Researchers share checkpoints in portable formats; `portusctl view
//! DEVICE` lists every model on a device image, and `portusctl dump
//! DEVICE MODEL FILE` serializes a PMem-resident checkpoint into the
//! portable container of [`portus_format`] — the only place Portus ever
//! serializes, and it happens offline.

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use portus_format::{write_checkpoint, CheckpointEntry, PayloadSource};
use portus_pmem::load_image;
use portus_sim::SimContext;

use crate::proto::ModelSummary;
use crate::{Index, ModelMap, PortusError, PortusResult};

/// Result of a `portusctl dump`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpReport {
    /// The dumped model.
    pub model: String,
    /// The version that was dumped (latest complete).
    pub version: u64,
    /// Payload bytes written.
    pub bytes: u64,
    /// Number of tensors.
    pub tensors: usize,
}

fn open_index(image: &Path) -> PortusResult<(Index, ModelMap)> {
    let dev = load_image(SimContext::icdcs24(), image)?;
    Index::recover(dev)
}

/// `portusctl view DEVICE`: lists all models stored on the device image
/// at `image`.
///
/// # Errors
///
/// Image/recovery failures.
pub fn view(image: &Path) -> PortusResult<Vec<ModelSummary>> {
    let (index, map) = open_index(image)?;
    let mut out = Vec::with_capacity(map.len());
    for (name, off) in map.iter() {
        let mi = index.load_mindex(off)?;
        out.push(ModelSummary {
            name: name.to_string(),
            layers: mi.tensors.len() as u32,
            bytes: mi.total_bytes,
            latest_version: mi.latest_done().map(|(_, s)| s.version),
            valid_versions: mi.valid_versions(),
            complete: mi.flags & crate::FLAG_JOB_COMPLETE != 0,
        });
    }
    Ok(out)
}

/// `portusctl dump DEVICE MODEL FILE`: extracts the latest complete
/// checkpoint of `model` from the device image into a portable
/// container at `out`.
///
/// # Errors
///
/// [`PortusError::ModelNotFound`] / [`PortusError::NoValidCheckpoint`]
/// when the model or a complete version is missing, plus image and
/// container errors.
pub fn dump(image: &Path, model: &str, out: &Path) -> PortusResult<DumpReport> {
    let (index, map) = open_index(image)?;
    let off = map
        .get(model)
        .ok_or_else(|| PortusError::ModelNotFound(model.to_string()))?;
    let mi = index.load_mindex(off)?;
    let (_slot, hdr) = mi
        .latest_done()
        .ok_or_else(|| PortusError::NoValidCheckpoint(model.to_string()))?;

    let mut entries = Vec::with_capacity(mi.tensors.len());
    for rec in &mi.tensors {
        let len = rec.meta.size_bytes();
        let mut payload = vec![0u8; len as usize];
        index
            .device()
            .read(hdr.data_off + rec.rel_off, &mut payload)?;
        entries.push(CheckpointEntry {
            meta: rec.meta.clone(),
            data: PayloadSource::Bytes(payload),
        });
    }
    // This is the one serialization Portus performs, and it is offline
    // (§VI, lesson 2).
    portus_format::charge_serialize(index.device().ctx(), mi.total_bytes);
    let file = File::create(out)?;
    write_checkpoint(BufWriter::new(file), model, &entries)?;
    Ok(DumpReport {
        model: model.to_string(),
        version: hdr.version,
        bytes: mi.total_bytes,
        tensors: mi.tensors.len(),
    })
}

/// Renders summaries as the table `portusctl view` prints.
pub fn render_view(models: &[ModelSummary]) -> String {
    let mut out = String::from(
        "MODEL                                    LAYERS      BYTES  LATEST  VALID  COMPLETE\n",
    );
    for m in models {
        out.push_str(&format!(
            "{:<40} {:>6} {:>10}  {:>6}  {:>5}  {}\n",
            m.name,
            m.layers,
            m.bytes,
            m.latest_version
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            m.valid_versions,
            if m.complete { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_view_formats_rows() {
        let rows = vec![ModelSummary {
            name: "bert".into(),
            layers: 396,
            bytes: 1024,
            latest_version: Some(3),
            valid_versions: 2,
            complete: true,
        }];
        let s = render_view(&rows);
        assert!(s.contains("bert"));
        assert!(s.contains("396"));
        assert!(s.contains("yes"));
    }

    #[test]
    fn view_missing_image_errors() {
        assert!(view(Path::new("/nonexistent/portus.img")).is_err());
    }
}
