//! Portus Client: the training-framework extension.
//!
//! On job start the client "collects pointers to each tensor on the
//! pre-allocated GPU memory ... registers the GPU address space for each
//! tensor as an RDMA memory region using NVIDIA Peer Memory ... and
//! sends the packet to the Portus storage server by TCP socket"
//! (§III-B). Checkpointing then costs the client one `DO_CHECKPOINT`
//! message; all data movement is done *to* it, not by it.
//!
//! [`PortusClient::checkpoint_async`] + [`PortusClient::guard_update`]
//! implement the asynchronous mechanism of §III-E/Fig. 8: training only
//! waits at the parameter-update phase, and only if the in-flight pull
//! has not finished.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use portus_dnn::ModelInstance;
use portus_rdma::{Access, ControlChannel, MemoryRegion, Nic, QueuePair, RegionTarget};
use portus_sim::{MetricsSnapshot, SimContext, SimDuration, SimTime, SpanRecord, Stage, TraceOp};

use crate::daemon::{ClientEndpoints, PortusDaemon};
use crate::proto::{ModelSummary, Reply, Request, TensorDesc};
use crate::{PortusError, PortusResult};

/// Result of one completed checkpoint operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The model that was checkpointed.
    pub model: String,
    /// The new version number.
    pub version: u64,
    /// Payload bytes pulled to PMem.
    pub bytes: u64,
    /// Daemon-side virtual time (the pull itself).
    pub elapsed: SimDuration,
}

/// Result of one completed restore operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// The model that was restored.
    pub model: String,
    /// The version that was loaded.
    pub version: u64,
    /// Payload bytes written back to GPU memory.
    pub bytes: u64,
    /// Daemon-side virtual time (the push itself).
    pub elapsed: SimDuration,
}

/// Result of one completed incremental checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReport {
    /// The model that was checkpointed.
    pub model: String,
    /// The new version number.
    pub version: u64,
    /// Bytes pulled over the fabric (dirty tensors only).
    pub pulled_bytes: u64,
    /// Bytes carried over device-locally from the previous version.
    pub copied_bytes: u64,
    /// Daemon-side virtual time (pulls + carry-over copies).
    pub elapsed: SimDuration,
}

/// Handle to an in-flight asynchronous checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingCheckpoint {
    req_id: u64,
    /// Virtual instant the request was sent (start of the Rpc span).
    sent: SimTime,
}

/// A client connection to a [`PortusDaemon`].
pub struct PortusClient {
    ctx: SimContext,
    nic: Arc<Nic>,
    requests: ControlChannel<Request>,
    replies: ControlChannel<Reply>,
    _qp: QueuePair,
    _extra_qps: Vec<QueuePair>,
    next_req: AtomicU64,
    pending: Mutex<HashMap<u64, Reply>>,
    recv_gate: Mutex<()>,
    registered: Mutex<HashMap<String, Vec<Arc<MemoryRegion>>>>,
    inflight: Mutex<HashMap<String, PendingCheckpoint>>,
    /// How many times a synchronous checkpoint honors a `Throttled`
    /// reply's `retry_after` hint before surfacing the error (0 =
    /// sheds surface immediately).
    throttle_retries: AtomicU64,
}

impl std::fmt::Debug for PortusClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortusClient")
            .field("node", &self.nic.node())
            .field("registered_models", &self.registered.lock().len())
            .finish()
    }
}

impl PortusClient {
    /// Connects to `daemon` from `client_nic` as the `"default"`
    /// tenant; use [`PortusClient::connect_as`] to name one.
    pub fn connect(daemon: &PortusDaemon, client_nic: Arc<Nic>) -> PortusClient {
        Self::connect_as(daemon, client_nic, "default")
    }

    /// Connects to `daemon` with an explicit tenant identity: the
    /// daemon charges this connection's checkpoints to `tenant`'s token
    /// buckets, confines it to its weighted-fair lane share, and breaks
    /// out its metrics per tenant (see [`crate::TenantQos`]).
    pub fn connect_as(daemon: &PortusDaemon, client_nic: Arc<Nic>, tenant: &str) -> PortusClient {
        let ClientEndpoints {
            requests,
            replies,
            qp,
            extra_qps,
        } = daemon.accept_as(Arc::clone(&client_nic), tenant);
        PortusClient {
            ctx: client_nic.ctx().clone(),
            nic: client_nic,
            requests,
            replies,
            _qp: qp,
            _extra_qps: extra_qps,
            next_req: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            recv_gate: Mutex::new(()),
            registered: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            throttle_retries: AtomicU64::new(0),
        }
    }

    /// Lets synchronous checkpoints honor up to `retries` consecutive
    /// [`PortusError::Throttled`] sheds: each retry waits out the
    /// daemon's `retry_after` hint on the virtual clock and re-sends.
    /// Zero (the default) surfaces the first shed to the caller.
    pub fn set_throttle_retries(&self, retries: u64) {
        self.throttle_retries.store(retries, Ordering::Relaxed);
    }

    fn fresh_id(&self) -> u64 {
        self.next_req.fetch_add(1, Ordering::Relaxed)
    }

    /// Records the client-visible round trip of one datapath request
    /// as an `Rpc` span (request sent → reply received, on the virtual
    /// clock) into the shared tracer and metrics.
    fn record_rpc(&self, req_id: u64, op: TraceOp, model: &str, sent: SimTime) {
        let end = self.ctx.clock.now();
        self.ctx
            .metrics
            .record_stage(op, Stage::Rpc, end.saturating_since(sent));
        self.ctx.tracer.record(SpanRecord {
            req_id,
            op,
            stage: Stage::Rpc,
            model: model.to_string(),
            start: sent,
            end,
            round: 0,
            lane: 0,
        });
    }

    /// Demultiplexes replies: returns the reply for `req_id`, parking
    /// any others for their waiters.
    fn wait_reply(&self, req_id: u64) -> PortusResult<Reply> {
        loop {
            if let Some(r) = self.pending.lock().remove(&req_id) {
                return Ok(r);
            }
            let _gate = self.recv_gate.lock();
            // Re-check: another thread may have parked our reply while
            // we waited for the gate.
            if let Some(r) = self.pending.lock().remove(&req_id) {
                return Ok(r);
            }
            let reply = self.replies.recv()?;
            if reply.req_id() == req_id {
                return Ok(reply);
            }
            self.pending.lock().insert(reply.req_id(), reply);
        }
    }

    fn expect_ok(reply: Reply) -> PortusResult<Reply> {
        match reply {
            Reply::Error { message, .. } => Err(PortusError::Daemon(message)),
            // Rebuild the typed datapath error so callers can match on
            // it and read the per-tensor attribution / retry counts.
            Reply::DatapathFailed {
                model,
                op,
                failures,
                ..
            } => Err(PortusError::DatapathFailed {
                model,
                op,
                failures,
            }),
            Reply::OutOfSpace {
                needed,
                free,
                largest_extent,
                ..
            } => Err(PortusError::OutOfSpace {
                needed,
                free,
                largest_extent,
            }),
            Reply::Throttled { retry_after_ns, .. } => {
                Err(PortusError::Throttled { retry_after_ns })
            }
            Reply::CatalogFull { capacity, .. } => Err(PortusError::CatalogFull { capacity }),
            ok => Ok(ok),
        }
    }

    /// Registers a model instance: every tensor's GPU buffer becomes a
    /// remote-readable memory region; their rkeys and metadata are sent
    /// to the daemon, which builds the checkpoint structure on PMem
    /// ahead of time.
    ///
    /// # Errors
    ///
    /// Daemon-side rejections (structure mismatch, table full) and
    /// channel failures.
    pub fn register_model(&self, model: &ModelInstance) -> PortusResult<()> {
        let mut mrs = Vec::with_capacity(model.tensors().len());
        let mut descs = Vec::with_capacity(model.tensors().len());
        for t in model.tensors() {
            let mr = self
                .nic
                .register(RegionTarget::Buffer(Arc::clone(&t.buffer)), Access::READ);
            descs.push(TensorDesc::from_registration(t, &mr));
            mrs.push(mr);
        }
        let req_id = self.fresh_id();
        self.requests.send(Request::Register {
            req_id,
            model: model.spec().name.clone(),
            tensors: descs,
        })?;
        Self::expect_ok(self.wait_reply(req_id)?)?;
        self.registered
            .lock()
            .insert(model.spec().name.clone(), mrs);
        Ok(())
    }

    /// Synchronous checkpoint: sends `DO_CHECKPOINT` and waits for the
    /// pull to complete. A `Throttled` shed is retried up to
    /// [`PortusClient::set_throttle_retries`] times, waiting out each
    /// `retry_after` hint on the virtual clock.
    ///
    /// # Errors
    ///
    /// Daemon-side failures (unregistered model, fabric errors);
    /// [`PortusError::Throttled`] once the retry budget is spent.
    pub fn checkpoint(&self, model: &str) -> PortusResult<CheckpointReport> {
        let mut attempts = self.throttle_retries.load(Ordering::Relaxed);
        loop {
            let pending = self.checkpoint_async(model)?;
            match self.wait_checkpoint(model, pending) {
                Err(PortusError::Throttled { retry_after_ns }) if attempts > 0 => {
                    attempts -= 1;
                    self.ctx
                        .clock
                        .advance_by(SimDuration::from_nanos(retry_after_ns));
                }
                outcome => return outcome,
            }
        }
    }

    /// Asynchronous checkpoint: sends `DO_CHECKPOINT` and returns
    /// immediately; training proceeds while the daemon pulls.
    ///
    /// At most one checkpoint per model may be in flight on a
    /// connection: a second `checkpoint_async` before the first is
    /// waited on (via [`PortusClient::wait_checkpoint`] or
    /// [`PortusClient::guard_update`]) is rejected rather than silently
    /// orphaning the first reply.
    ///
    /// # Errors
    ///
    /// [`PortusError::AlreadyInFlight`] if a checkpoint of `model` is
    /// already in flight; channel failures (daemon errors surface on
    /// wait).
    pub fn checkpoint_async(&self, model: &str) -> PortusResult<PendingCheckpoint> {
        let mut inflight = self.inflight.lock();
        if inflight.contains_key(model) {
            return Err(PortusError::AlreadyInFlight(model.to_string()));
        }
        let req_id = self.fresh_id();
        let sent = self.ctx.clock.now();
        self.requests.send(Request::Checkpoint {
            req_id,
            model: model.to_string(),
        })?;
        let pending = PendingCheckpoint { req_id, sent };
        inflight.insert(model.to_string(), pending);
        Ok(pending)
    }

    /// Waits for an asynchronous checkpoint to finish.
    ///
    /// # Errors
    ///
    /// The daemon-side error of the operation, if it failed. The
    /// in-flight entry is consumed on **every** exit path — success,
    /// daemon error, or channel failure — so a failed async checkpoint
    /// surfaces once and never wedges a later
    /// [`PortusClient::guard_update`] on an already-consumed reply.
    pub fn wait_checkpoint(
        &self,
        model: &str,
        pending: PendingCheckpoint,
    ) -> PortusResult<CheckpointReport> {
        let outcome = self.wait_reply(pending.req_id);
        if outcome.is_ok() {
            self.record_rpc(pending.req_id, TraceOp::Checkpoint, model, pending.sent);
        }
        {
            let mut inflight = self.inflight.lock();
            if inflight.get(model) == Some(&pending) {
                inflight.remove(model);
            }
        }
        let reply = Self::expect_ok(outcome?)?;
        match reply {
            Reply::CheckpointDone {
                version,
                bytes,
                elapsed,
                ..
            } => Ok(CheckpointReport {
                model: model.to_string(),
                version,
                bytes,
                elapsed,
            }),
            other => Err(PortusError::Daemon(format!(
                "unexpected reply to checkpoint: {other:?}"
            ))),
        }
    }

    /// Incremental checkpoint (extension; see DESIGN.md §9): only the
    /// tensors flagged in `dirty` cross the fabric; the rest are carried
    /// over from the previous complete version device-locally on PMem.
    /// The result is a full, independently valid version. Pass the mask
    /// from [`portus_dnn::ModelInstance::take_dirty`].
    ///
    /// # Errors
    ///
    /// Daemon-side failures (unregistered model, mask length mismatch);
    /// [`PortusError::Throttled`] once the
    /// [`PortusClient::set_throttle_retries`] budget is spent.
    pub fn checkpoint_delta(&self, model: &str, dirty: &[bool]) -> PortusResult<DeltaReport> {
        let mut attempts = self.throttle_retries.load(Ordering::Relaxed);
        loop {
            match self.checkpoint_delta_once(model, dirty) {
                Err(PortusError::Throttled { retry_after_ns }) if attempts > 0 => {
                    attempts -= 1;
                    self.ctx
                        .clock
                        .advance_by(SimDuration::from_nanos(retry_after_ns));
                }
                outcome => return outcome,
            }
        }
    }

    fn checkpoint_delta_once(&self, model: &str, dirty: &[bool]) -> PortusResult<DeltaReport> {
        let req_id = self.fresh_id();
        let sent = self.ctx.clock.now();
        self.requests.send(Request::DeltaCheckpoint {
            req_id,
            model: model.to_string(),
            dirty: dirty.to_vec(),
        })?;
        let reply = self.wait_reply(req_id)?;
        self.record_rpc(req_id, TraceOp::DeltaCheckpoint, model, sent);
        match Self::expect_ok(reply)? {
            Reply::DeltaDone {
                version,
                pulled_bytes,
                copied_bytes,
                elapsed,
                ..
            } => Ok(DeltaReport {
                model: model.to_string(),
                version,
                pulled_bytes,
                copied_bytes,
                elapsed,
            }),
            other => Err(PortusError::Daemon(format!(
                "unexpected reply to delta checkpoint: {other:?}"
            ))),
        }
    }

    /// The Fig. 8 barrier: called by the training loop right before the
    /// parameter-update phase. If a checkpoint pull of `model` is in
    /// flight, blocks until it completes (parameters must not change
    /// under an active pull). Returns the completed report, if any.
    ///
    /// # Errors
    ///
    /// The in-flight operation's failure, if it failed.
    pub fn guard_update(&self, model: &str) -> PortusResult<Option<CheckpointReport>> {
        let pending = self.inflight.lock().get(model).copied();
        match pending {
            Some(p) => Ok(Some(self.wait_checkpoint(model, p)?)),
            None => Ok(None),
        }
    }

    /// Whether a checkpoint of `model` is currently in flight.
    pub fn has_inflight(&self, model: &str) -> bool {
        self.inflight.lock().contains_key(model)
    }

    /// Restores the latest complete checkpoint into `model` (an
    /// "empty" instance with the same structure): registers the GPU
    /// regions for remote write and asks the daemon to push.
    ///
    /// # Errors
    ///
    /// [`PortusError::Daemon`] wrapping `NoValidCheckpoint`, checksum
    /// failures, or structure mismatches.
    pub fn restore(&self, model: &ModelInstance) -> PortusResult<RestoreReport> {
        self.restore_version(model, None)
    }

    /// [`Self::restore`], pinned to a specific `Done` version
    /// (`None` = latest). Replicated and sharded clients use the pin
    /// to settle every participant on one common checkpoint.
    ///
    /// # Errors
    ///
    /// [`PortusError::NoValidCheckpoint`] if the requested version is
    /// no longer on the daemon's PMem, plus everything
    /// [`Self::restore`] can return.
    pub fn restore_version(
        &self,
        model: &ModelInstance,
        version: Option<u64>,
    ) -> PortusResult<RestoreReport> {
        let mut mrs = Vec::with_capacity(model.tensors().len());
        let mut descs = Vec::with_capacity(model.tensors().len());
        for t in model.tensors() {
            let mr = self
                .nic
                .register(RegionTarget::Buffer(Arc::clone(&t.buffer)), Access::WRITE);
            descs.push(TensorDesc::from_registration(t, &mr));
            mrs.push(mr);
        }
        let req_id = self.fresh_id();
        let sent = self.ctx.clock.now();
        self.requests.send(Request::Restore {
            req_id,
            model: model.spec().name.clone(),
            tensors: descs,
            version,
        })?;
        let raw = self.wait_reply(req_id);
        if raw.is_ok() {
            self.record_rpc(req_id, TraceOp::Restore, &model.spec().name, sent);
        }
        let reply = raw.and_then(Self::expect_ok);
        // Restore registrations are transient; drop them either way.
        for mr in &mrs {
            self.nic.deregister(mr.rkey());
        }
        match reply? {
            Reply::RestoreDone {
                version,
                bytes,
                elapsed,
                ..
            } => Ok(RestoreReport {
                model: model.spec().name.clone(),
                version,
                bytes,
                elapsed,
            }),
            other => Err(PortusError::Daemon(format!(
                "unexpected reply to restore: {other:?}"
            ))),
        }
    }

    /// Marks the training job complete (enables repacking of the old
    /// version).
    ///
    /// # Errors
    ///
    /// Daemon-side failures.
    pub fn mark_complete(&self, model: &str) -> PortusResult<()> {
        let req_id = self.fresh_id();
        self.requests.send(Request::MarkComplete {
            req_id,
            model: model.to_string(),
        })?;
        Self::expect_ok(self.wait_reply(req_id)?)?;
        Ok(())
    }

    /// Drops the model from the daemon and deregisters its regions.
    ///
    /// # Errors
    ///
    /// Daemon-side failures.
    pub fn drop_model(&self, model: &str) -> PortusResult<()> {
        let req_id = self.fresh_id();
        self.requests.send(Request::Drop {
            req_id,
            model: model.to_string(),
        })?;
        Self::expect_ok(self.wait_reply(req_id)?)?;
        if let Some(mrs) = self.registered.lock().remove(model) {
            for mr in mrs {
                self.nic.deregister(mr.rkey());
            }
        }
        Ok(())
    }

    /// Lists models stored on the daemon.
    ///
    /// # Errors
    ///
    /// Daemon-side failures.
    pub fn list_models(&self) -> PortusResult<Vec<ModelSummary>> {
        let req_id = self.fresh_id();
        self.requests.send(Request::List { req_id })?;
        match Self::expect_ok(self.wait_reply(req_id)?)? {
            Reply::Models { models, .. } => Ok(models),
            other => Err(PortusError::Daemon(format!(
                "unexpected reply to list: {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's observability snapshot: per-stage latency
    /// histograms (p50/p95/p99 derivable) and dispatch-queue gauges.
    ///
    /// # Errors
    ///
    /// Daemon-side failures.
    pub fn stats(&self) -> PortusResult<MetricsSnapshot> {
        let req_id = self.fresh_id();
        self.requests.send(Request::Stats { req_id })?;
        match Self::expect_ok(self.wait_reply(req_id)?)? {
            Reply::Stats { metrics, .. } => Ok(*metrics),
            other => Err(PortusError::Daemon(format!(
                "unexpected reply to stats: {other:?}"
            ))),
        }
    }

    /// The client's simulation context.
    pub fn ctx(&self) -> &SimContext {
        &self.ctx
    }
}

impl Drop for PortusClient {
    fn drop(&mut self) {
        // Best-effort goodbye so the worker thread exits promptly.
        let _ = self.requests.send(Request::Disconnect);
    }
}
