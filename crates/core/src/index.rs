//! The persistent three-level index: ModelTable → MIndex → TensorData.
//!
//! Exactly the structure of §III-D1:
//!
//! * **ModelTable** — a fixed array of 32-byte entries at the head of
//!   the devdax namespace, mapping a model-name hash to the PMem offset
//!   of its MIndex record (`info_offset`). Entries are claimed with an
//!   8-byte CAS on their state word — the paper's "compare & swap
//!   intrinsic to ensure the lock-free of the whole system".
//! * **MIndex** — one record per model: the name, layer count, total
//!   bytes, a fixed-size table of per-tensor metadata (name, dtype,
//!   shape, size, relative data offset), and **two** slot headers — the
//!   double mapping of §III-D2 that keeps one complete version durable
//!   while the other is being overwritten.
//! * **TensorData** — two page-aligned data regions per model (one per
//!   slot) allocated from the [`PmemAllocator`]; tensor `i` of slot `s`
//!   lives at `slots[s].data_off + tensors[i].rel_off`.
//!
//! Persistence ordering (all enforced here):
//! 1. a ModelTable entry goes live only after its MIndex and data
//!    regions are fully persisted;
//! 2. a slot is marked `Active` (invalid) before any data lands in it;
//! 3. a slot is marked `Done` only after its data and checksum are
//!    persisted — so recovery trusts exactly the `Done` slots.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use portus_dnn::{DType, TensorMeta};
use portus_pmem::{typed, ExtentStore, PmemAlloc, PmemAllocator, PmemDevice, PmemError};

use crate::catalog::{Catalog, CatalogConfig};
use crate::dedup::read_extent_map;
use crate::{ModelMap, PortusError, PortusResult};

const SUPER_MAGIC: u64 = 0x504F_5254_5553_5342; // "PORTUSSB"
const MINDEX_MAGIC: u32 = 0x4D49_4458; // "MIDX"

/// Superblock word holding the extent-table offset (0 = dedup never
/// enabled on this namespace).
const SUPER_XT_OFF: u64 = 48;

/// Superblock word holding the learned catalog's root-block offset
/// (0 = catalog never enabled on this namespace). Flipping this word
/// is the commit point for catalog root rebuilds — see
/// [`crate::Catalog`].
const SUPER_CAT_OFF: u64 = 56;

/// Allocator tag for the extent table region itself.
pub(crate) const EXTENT_TABLE_TAG: u64 = 0x5854_4241_5354_4247; // "XTBASTBG"

const SUPER_SIZE: u64 = 64;
const TABLE_ENTRY_SIZE: u64 = 32;

// Table entry states (CAS'd).
const ENTRY_EMPTY: u64 = 0;
const ENTRY_CLAIMED: u64 = 1;
const ENTRY_LIVE: u64 = 2;

// MIndex record layout.
const MI_FLAGS: u64 = 8;
const MI_LAYERS: u64 = 16;
const MI_TOTAL: u64 = 24;
const MI_NAME: u64 = 32;
const MI_NAME_MAX: usize = 254;
const MI_SLOT0: u64 = 320;
const SLOT_HDR_SIZE: u64 = 64;
const MI_TENSORS: u64 = MI_SLOT0 + 2 * SLOT_HDR_SIZE;

// Tensor record layout (within the MIndex tensor table).
const TREC_SIZE: u64 = 184;
const TREC_NAME_MAX: usize = 126;
const TREC_DTYPE: u64 = 128;
const TREC_NDIM: u64 = 129;
const TREC_DIMS: u64 = 136;
const TREC_MAX_DIMS: usize = 4;
const TREC_LEN: u64 = 168;
const TREC_RELOFF: u64 = 176;

// Slot header fields (relative to the slot header offset). All eight
// words live in the header's single 64-byte cache line, so writing the
// digest fields adds no flush cost over the original five-word header.
const SH_STATE: u64 = 0;
const SH_VERSION: u64 = 8;
const SH_CHECKSUM: u64 = 16;
const SH_DATA_OFF: u64 = 24;
const SH_DATA_LEN: u64 = 32;
const SH_DIGEST: u64 = 40;
const SH_CKSUM_KIND: u64 = 48;
const SH_EXT_MAP: u64 = 56;

/// `cksum_kind`: the slot's integrity word is the legacy sequential
/// FNV-1a of the data region (in `checksum`).
pub const CKSUM_KIND_FNV: u64 = 0;
/// `cksum_kind`: the slot's integrity word is the order-independent
/// positional digest (in `digest`), combined incrementally per WQE run
/// by the striped datapath; `checksum` is 0.
pub const CKSUM_KIND_DIGEST: u64 = 1;

/// Flag bit: the training job using this model finished (repacker may
/// reclaim everything but the latest version).
pub const FLAG_JOB_COMPLETE: u64 = 1;

/// Number of checkpoint slots per model — the double mapping.
pub const SLOT_COUNT: usize = 2;

/// State of one checkpoint slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Never written.
    Empty,
    /// A checkpoint into this slot started and has not completed —
    /// its data must not be trusted.
    Active,
    /// A complete, checksummed version.
    Done,
}

impl SlotState {
    fn to_u64(self) -> u64 {
        match self {
            SlotState::Empty => 0,
            SlotState::Active => 1,
            SlotState::Done => 2,
        }
    }

    fn from_u64(v: u64) -> PortusResult<SlotState> {
        Ok(match v {
            0 => SlotState::Empty,
            1 => SlotState::Active,
            2 => SlotState::Done,
            other => {
                return Err(PortusError::Daemon(format!("corrupt slot state {other}")));
            }
        })
    }
}

/// One slot header, as stored on PMem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHeader {
    /// The slot's state.
    pub state: SlotState,
    /// Version number of the checkpoint in this slot.
    pub version: u64,
    /// FNV-1a over the slot's data region (valid when `Done` and
    /// `cksum_kind == CKSUM_KIND_FNV`).
    pub checksum: u64,
    /// Absolute PMem offset of the slot's TensorData region.
    pub data_off: u64,
    /// Region length (= the model's total bytes).
    pub data_len: u64,
    /// Positional digest of the data region (valid when `Done` and
    /// `cksum_kind == CKSUM_KIND_DIGEST`). See [`region_digest`].
    pub digest: u64,
    /// Which integrity word validates the slot: [`CKSUM_KIND_FNV`] or
    /// [`CKSUM_KIND_DIGEST`].
    pub cksum_kind: u64,
    /// Absolute PMem offset of the slot's extent map, when the dedup
    /// tier holds this version as content-addressed extents instead of
    /// a contiguous region (`data_off` is 0 then). 0 on the plain path.
    pub ext_map: u64,
}

/// One tensor's record in an MIndex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorRecord {
    /// The tensor metadata.
    pub meta: TensorMeta,
    /// Offset of this tensor within each slot's data region.
    pub rel_off: u64,
}

/// A DRAM view of one MIndex record.
#[derive(Debug, Clone)]
pub struct MIndex {
    /// Absolute PMem offset of the record.
    pub offset: u64,
    /// Model name.
    pub name: String,
    /// Flag bits ([`FLAG_JOB_COMPLETE`]).
    pub flags: u64,
    /// Total checkpoint payload bytes.
    pub total_bytes: u64,
    /// Per-tensor records in layer order.
    pub tensors: Vec<TensorRecord>,
    /// The two slot headers.
    pub slots: [SlotHeader; SLOT_COUNT],
}

impl MIndex {
    /// The latest complete version: `(slot_index, header)`.
    pub fn latest_done(&self) -> Option<(usize, SlotHeader)> {
        self.slots
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, s)| s.state == SlotState::Done)
            .max_by_key(|(_, s)| s.version)
    }

    /// The slot a new checkpoint must target: never the latest `Done`
    /// slot, so one complete version always survives.
    pub fn target_slot(&self) -> usize {
        match self.latest_done() {
            Some((latest_idx, _)) => 1 - latest_idx,
            None => {
                // No complete version yet: prefer an Empty slot, else 0.
                self.slots
                    .iter()
                    .position(|s| s.state == SlotState::Empty)
                    .unwrap_or(0)
            }
        }
    }

    /// Number of `Done` slots.
    pub fn valid_versions(&self) -> u8 {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Done)
            .count() as u8
    }

    /// The `Done` slot holding exactly `version`, if still on PMem.
    pub fn done_version(&self, version: u64) -> Option<(usize, SlotHeader)> {
        self.slots
            .iter()
            .copied()
            .enumerate()
            .find(|(_, s)| s.state == SlotState::Done && s.version == version)
    }

    /// Every `Done` version currently on PMem, ascending.
    pub fn done_versions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .slots
            .iter()
            .filter(|s| s.state == SlotState::Done)
            .map(|s| s.version)
            .collect();
        v.sort_unstable();
        v
    }

    /// The version the next checkpoint must use: one past the largest
    /// version either slot header carries, *regardless of state*.
    /// `latest_done()` alone is not enough — after a rollback collapses
    /// the newest `Done` slot, its issued version must not be reused
    /// (a client may have observed it), so collapsed/reverted headers
    /// keep their version as a high-water mark.
    pub fn next_version(&self) -> u64 {
        self.slots.iter().map(|s| s.version).max().unwrap_or(0) + 1
    }
}

/// SplitMix64 finalizer — position weights for [`region_digest`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Positional digest of `bytes`, which sit at slot-relative offset
/// `base` within their data region: each byte contributes
/// `(b + 1) * splitmix64(base + i)` and contributions combine with
/// wrapping addition. Because addition is commutative and associative,
/// digests of disjoint chunks that tile a region can be computed in any
/// order — or on any queue pair — and summed with [`combine_digests`]
/// to equal the whole region's digest, which is what lets the striped
/// datapath checksum each WQE run as its completion drains instead of
/// re-reading the full slot afterwards. The `+ 1` keeps zero bytes from
/// vanishing, so a region of zeros at the wrong offset still mismatches.
pub fn region_digest(bytes: &[u8], base: u64) -> u64 {
    let mut acc = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        acc = acc.wrapping_add((b as u64 + 1).wrapping_mul(splitmix64(base + i as u64)));
    }
    acc
}

/// Combines the positional digests of two disjoint chunks of one data
/// region (order-independent).
pub fn combine_digests(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

/// FNV-1a over a string (the ModelTable name hash).
pub fn name_hash(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Size of the reusable device-I/O scratch buffer.
pub(crate) const IO_BUF_LEN: usize = 256 * 1024;

thread_local! {
    /// One scratch buffer per thread for the seal/verify/copy loops;
    /// the hot paths previously allocated 256 KiB per call.
    static IO_BUF: RefCell<Vec<u8>> = RefCell::new(vec![0u8; IO_BUF_LEN]);
}

/// Runs `f` with this thread's reusable I/O scratch buffer. Callers
/// must not re-enter (the buffer is exclusively borrowed).
pub(crate) fn with_io_buf<T>(f: impl FnOnce(&mut [u8]) -> T) -> T {
    IO_BUF.with(|buf| f(&mut buf.borrow_mut()))
}

/// The persistent index over one devdax namespace.
#[derive(Debug)]
pub struct Index {
    dev: Arc<PmemDevice>,
    alloc: PmemAllocator,
    table_base: u64,
    table_cap: u32,
    /// The content-addressed extent store, present once dedup is
    /// enabled (or recovered from a namespace that had it enabled).
    extents: OnceLock<ExtentStore>,
    /// The learned micro-paged catalog, present once enabled (or
    /// recovered from a namespace that had it enabled).
    catalog: OnceLock<Catalog>,
}

impl Index {
    /// Formats a fresh namespace: superblock, empty ModelTable with
    /// `table_cap` entries, and an allocator with `alloc_slots` slots
    /// over the rest of the device.
    ///
    /// # Errors
    ///
    /// Device bounds errors if the namespace is too small.
    pub fn format(dev: Arc<PmemDevice>, table_cap: u32, alloc_slots: u32) -> PortusResult<Index> {
        let table_base = SUPER_SIZE;
        let table_size = table_cap as u64 * TABLE_ENTRY_SIZE;
        let alloc_base = table_base + table_size;
        let heap_base = (alloc_base + PmemAllocator::table_size(alloc_slots) + 4095) & !4095;
        let heap_end = dev.capacity();

        // Superblock.
        let mut sb = Vec::with_capacity(SUPER_SIZE as usize);
        sb.extend_from_slice(&SUPER_MAGIC.to_le_bytes());
        sb.extend_from_slice(&1u32.to_le_bytes());
        sb.extend_from_slice(&table_cap.to_le_bytes());
        sb.extend_from_slice(&table_base.to_le_bytes());
        sb.extend_from_slice(&alloc_base.to_le_bytes());
        sb.extend_from_slice(&heap_base.to_le_bytes());
        sb.extend_from_slice(&heap_end.to_le_bytes());
        sb.resize(SUPER_SIZE as usize, 0);
        dev.write(0, &sb)?;
        // Zero the table.
        dev.write(table_base, &vec![0u8; table_size as usize])?;
        dev.persist(0, table_base + table_size)?;

        let alloc =
            PmemAllocator::format(dev.clone(), alloc_base, alloc_slots, heap_base, heap_end)?;
        Ok(Index {
            dev,
            alloc,
            table_base,
            table_cap,
            extents: OnceLock::new(),
            catalog: OnceLock::new(),
        })
    }

    /// Recovers the index from a previously formatted namespace and
    /// rebuilds the in-DRAM [`ModelMap`]. Allocations not *reachable*
    /// from any live table entry (leaked by a crash mid-registration or
    /// mid-ingest) are freed. Reachability is by offset, never by
    /// name-hash tag alone: two live models whose names collide in
    /// FNV-1a share a tag, and a tag-only sweep would free the
    /// survivor's regions when either is removed.
    ///
    /// When the superblock records an extent table, the extent store is
    /// recovered too: its relocation journal is replayed, every
    /// persistent refcount is recounted from the live slots' extent
    /// maps (the durable counts are advisory — a crash can tear an
    /// incref/decref), and extents no map references are swept. The
    /// recount is what guarantees recovery never frees a referenced
    /// extent and never leaks an unreferenced one.
    ///
    /// # Errors
    ///
    /// [`PortusError::Daemon`] on bad magic; corruption errors from the
    /// allocator.
    pub fn recover(dev: Arc<PmemDevice>) -> PortusResult<(Index, ModelMap)> {
        if typed::read_u64(&dev, 0)? != SUPER_MAGIC {
            return Err(PortusError::Daemon("bad superblock magic".into()));
        }
        let table_cap = typed::read_u32(&dev, 12)?;
        let table_base = typed::read_u64(&dev, 16)?;
        let alloc_base = typed::read_u64(&dev, 24)?;
        let alloc = PmemAllocator::recover(dev.clone(), alloc_base)?;
        let index = Index {
            dev,
            alloc,
            table_base,
            table_cap,
            extents: OnceLock::new(),
            catalog: OnceLock::new(),
        };

        let mut map = ModelMap::new();
        let mut reachable: HashSet<u64> = HashSet::new();
        let mut ext_maps: Vec<u64> = Vec::new();
        for slot in 0..table_cap {
            let entry = index.entry_offset(slot);
            let state = typed::read_u64(&index.dev, entry)?;
            match state {
                ENTRY_LIVE => {
                    let off = typed::read_u64(&index.dev, entry + 16)?;
                    let mi = index.load_mindex(off)?;
                    reachable.insert(off);
                    for (s, hdr) in mi.slots.iter().enumerate() {
                        if hdr.ext_map != 0 {
                            // Extent publish detaches the staging region
                            // atomically; a header carrying both is
                            // defensive debris — the extents won, the
                            // region is dropped for the GC below.
                            if hdr.data_off != 0 {
                                let sh = off + MI_SLOT0 + s as u64 * SLOT_HDR_SIZE;
                                typed::write_u64(&index.dev, sh + SH_DATA_OFF, 0)?;
                                index.dev.persist(sh + SH_DATA_OFF, 8)?;
                            }
                            reachable.insert(hdr.ext_map);
                            ext_maps.push(hdr.ext_map);
                        } else if hdr.data_off != 0 {
                            reachable.insert(hdr.data_off);
                        }
                    }
                    map.insert(mi.name.clone(), off);
                }
                ENTRY_CLAIMED => {
                    // Crash mid-registration: roll the claim back.
                    typed::write_u64(&index.dev, entry, ENTRY_EMPTY)?;
                    index.dev.persist(entry, 8)?;
                }
                _ => {}
            }
        }

        // Recover the extent store if this namespace has one.
        let xt_off = typed::read_u64(&index.dev, SUPER_XT_OFF)?;
        if xt_off != 0 {
            let store = ExtentStore::recover(index.dev.clone(), xt_off)?;
            // Recount refcounts from the live extent maps.
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for &map_off in &ext_maps {
                for ext_slot in read_extent_map(&index.dev, map_off)?.extents {
                    *counts.entry(ext_slot).or_insert(0) += 1;
                }
            }
            for (ext_slot, rec) in store.live_extents()? {
                let count = counts.get(&ext_slot).copied().unwrap_or(0);
                if rec.refcount != count {
                    store.set_refcount(ext_slot, count)?;
                }
            }
            store.sweep_unreferenced(&index.alloc)?;
            reachable.insert(xt_off);
            for (_, rec) in store.live_extents()? {
                reachable.insert(rec.data_off);
            }
            let _ = index.extents.set(store);
        }

        // Recover the learned catalog if this namespace has one:
        // mount it, reconcile it against the authoritative table view
        // (covering the crash windows between a table publish/retire
        // and the matching catalog update), then mark its root and
        // pages reachable. Pages orphaned by a crash mid-split sit in
        // no current root, so the GC below reclaims them.
        if typed::read_u64(&index.dev, SUPER_CAT_OFF)? != 0 {
            let cat =
                Catalog::recover(index.dev.clone(), SUPER_CAT_OFF, &CatalogConfig::default())?;
            let live: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.to_string(), v)).collect();
            cat.reconcile(&index.alloc, &live)?;
            reachable.insert(cat.root_offset());
            for off in cat.page_offsets()? {
                reachable.insert(off);
            }
            let _ = index.catalog.set(cat);
        }

        // GC every allocation nothing reachable references.
        for a in index.alloc.live_allocations()? {
            if !reachable.contains(&a.offset) {
                index.alloc.free(&a)?;
            }
        }
        Ok((index, map))
    }

    /// Enables the content-addressed dedup tier: recovers the extent
    /// table recorded in the superblock, or formats a fresh one with
    /// `max_extents` records and publishes its offset. Idempotent.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn enable_dedup(&self, max_extents: u32) -> PortusResult<()> {
        if self.extents.get().is_some() {
            return Ok(());
        }
        let xt_off = typed::read_u64(&self.dev, SUPER_XT_OFF)?;
        let store = if xt_off != 0 {
            ExtentStore::recover(self.dev.clone(), xt_off)?
        } else {
            let size = ExtentStore::table_size(max_extents);
            let region = self.alloc.alloc_aligned(size, 64, EXTENT_TABLE_TAG)?;
            let store = ExtentStore::format(self.dev.clone(), region.offset, max_extents)?;
            // Publish after the table is persisted; a crash in between
            // leaves the region unreachable and recovery GCs it.
            typed::write_u64(&self.dev, SUPER_XT_OFF, region.offset)?;
            self.dev.persist(SUPER_XT_OFF, 8)?;
            store
        };
        let _ = self.extents.set(store);
        Ok(())
    }

    /// The extent store, when dedup is enabled.
    pub fn extent_store(&self) -> Option<&ExtentStore> {
        self.extents.get()
    }

    /// Enables the learned micro-paged catalog: recovers the root
    /// recorded in the superblock (applying `cfg`'s runtime knobs), or
    /// formats an empty catalog and publishes its root. Idempotent.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn enable_catalog(&self, cfg: &CatalogConfig) -> PortusResult<()> {
        if let Some(cat) = self.catalog.get() {
            cat.set_runtime(cfg);
            return Ok(());
        }
        let root = typed::read_u64(&self.dev, SUPER_CAT_OFF)?;
        let cat = if root != 0 {
            Catalog::recover(self.dev.clone(), SUPER_CAT_OFF, cfg)?
        } else {
            Catalog::format(self.dev.clone(), &self.alloc, SUPER_CAT_OFF, cfg)?
        };
        let _ = self.catalog.set(cat);
        Ok(())
    }

    /// The learned catalog, when one is mounted on this namespace.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog.get()
    }

    fn entry_offset(&self, slot: u32) -> u64 {
        self.table_base + slot as u64 * TABLE_ENTRY_SIZE
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    /// The underlying allocator.
    pub fn allocator(&self) -> &PmemAllocator {
        &self.alloc
    }

    /// Creates a model: allocates and persists its MIndex and both
    /// TensorData slots, then publishes it in the ModelTable.
    ///
    /// # Errors
    ///
    /// [`PortusError::NameTooLong`] for oversized names or too many
    /// dims, allocation failures, and [`PortusError::CatalogFull`]
    /// when the table is full.
    pub fn create_model(&self, name: &str, metas: &[TensorMeta]) -> PortusResult<MIndex> {
        if name.len() > MI_NAME_MAX {
            return Err(PortusError::NameTooLong(name.to_string()));
        }
        for m in metas {
            if m.name.len() > TREC_NAME_MAX {
                return Err(PortusError::NameTooLong(m.name.clone()));
            }
            if m.shape.len() > TREC_MAX_DIMS {
                return Err(PortusError::StructureMismatch(format!(
                    "tensor {} has {} dims; max {TREC_MAX_DIMS}",
                    m.name,
                    m.shape.len()
                )));
            }
        }
        let hash = name_hash(name);
        let total_bytes: u64 = metas.iter().map(TensorMeta::size_bytes).sum();
        let mindex_size = MI_TENSORS + metas.len() as u64 * TREC_SIZE;

        let mi_alloc = self.alloc.alloc_aligned(mindex_size, 64, hash)?;
        let data: Vec<PmemAlloc> = (0..SLOT_COUNT)
            .map(|_| self.alloc.alloc_aligned(total_bytes.max(4096), 4096, hash))
            .collect::<Result<_, PmemError>>()?;

        let off = mi_alloc.offset;
        let dev = &self.dev;
        // Header.
        dev.write(off, &MINDEX_MAGIC.to_le_bytes())?;
        dev.write(off + 4, &1u32.to_le_bytes())?;
        typed::write_u64(dev, off + MI_FLAGS, 0)?;
        typed::write_u32(dev, off + MI_LAYERS, metas.len() as u32)?;
        typed::write_u32(dev, off + MI_LAYERS + 4, SLOT_COUNT as u32)?;
        typed::write_u64(dev, off + MI_TOTAL, total_bytes)?;
        typed::write_str(dev, off + MI_NAME, name)?;
        // Slot headers: Empty, with their data regions recorded.
        for (s, d) in data.iter().enumerate() {
            let sh = off + MI_SLOT0 + s as u64 * SLOT_HDR_SIZE;
            typed::write_u64(dev, sh + SH_STATE, SlotState::Empty.to_u64())?;
            typed::write_u64(dev, sh + SH_VERSION, 0)?;
            typed::write_u64(dev, sh + SH_CHECKSUM, 0)?;
            typed::write_u64(dev, sh + SH_DATA_OFF, d.offset)?;
            typed::write_u64(dev, sh + SH_DATA_LEN, total_bytes)?;
            typed::write_u64(dev, sh + SH_DIGEST, 0)?;
            typed::write_u64(dev, sh + SH_CKSUM_KIND, CKSUM_KIND_FNV)?;
            typed::write_u64(dev, sh + SH_EXT_MAP, 0)?;
        }
        // Tensor records.
        let mut rel = 0u64;
        let mut tensors = Vec::with_capacity(metas.len());
        for (i, m) in metas.iter().enumerate() {
            let t = off + MI_TENSORS + i as u64 * TREC_SIZE;
            typed::write_str(dev, t, &m.name)?;
            dev.write(t + TREC_DTYPE, &[m.dtype.code()])?;
            dev.write(t + TREC_NDIM, &[m.shape.len() as u8])?;
            for (d, dim) in m.shape.iter().enumerate() {
                typed::write_u64(dev, t + TREC_DIMS + d as u64 * 8, *dim)?;
            }
            typed::write_u64(dev, t + TREC_LEN, m.size_bytes())?;
            typed::write_u64(dev, t + TREC_RELOFF, rel)?;
            tensors.push(TensorRecord {
                meta: m.clone(),
                rel_off: rel,
            });
            rel += m.size_bytes();
        }
        dev.persist(off, mindex_size)?;

        // Publish: CAS-claim a table entry, fill it, go live.
        let mut published = false;
        for slot in 0..self.table_cap {
            let entry = self.entry_offset(slot);
            if self.dev.cas_u64(entry, ENTRY_EMPTY, ENTRY_CLAIMED)?.is_ok() {
                typed::write_u64(dev, entry + 8, hash)?;
                typed::write_u64(dev, entry + 16, off)?;
                dev.persist(entry + 8, 16)?;
                self.dev
                    .cas_u64_persist(entry, ENTRY_CLAIMED, ENTRY_LIVE)?
                    .map_err(|v| PortusError::Daemon(format!("entry state raced to {v}")))?;
                published = true;
                break;
            }
        }
        if !published {
            // Roll back the allocations.
            self.alloc.free(&mi_alloc)?;
            for d in &data {
                self.alloc.free(d)?;
            }
            return Err(PortusError::CatalogFull {
                capacity: self.table_cap,
            });
        }

        Ok(MIndex {
            offset: off,
            name: name.to_string(),
            flags: 0,
            total_bytes,
            tensors,
            slots: [
                SlotHeader {
                    state: SlotState::Empty,
                    version: 0,
                    checksum: 0,
                    data_off: data[0].offset,
                    data_len: total_bytes,
                    digest: 0,
                    cksum_kind: CKSUM_KIND_FNV,
                    ext_map: 0,
                },
                SlotHeader {
                    state: SlotState::Empty,
                    version: 0,
                    checksum: 0,
                    data_off: data[1].offset,
                    data_len: total_bytes,
                    digest: 0,
                    cksum_kind: CKSUM_KIND_FNV,
                    ext_map: 0,
                },
            ],
        })
    }

    /// Loads the MIndex record at `off` into DRAM.
    ///
    /// # Errors
    ///
    /// [`PortusError::Daemon`] on bad magic or corrupt fields.
    pub fn load_mindex(&self, off: u64) -> PortusResult<MIndex> {
        let dev = &self.dev;
        if typed::read_u32(dev, off)? != MINDEX_MAGIC {
            return Err(PortusError::Daemon(format!(
                "bad MIndex magic at offset {off}"
            )));
        }
        let flags = typed::read_u64(dev, off + MI_FLAGS)?;
        let layers = typed::read_u32(dev, off + MI_LAYERS)?;
        let total_bytes = typed::read_u64(dev, off + MI_TOTAL)?;
        let (name, _) = typed::read_str(dev, off + MI_NAME)?;

        let mut slots = [SlotHeader {
            state: SlotState::Empty,
            version: 0,
            checksum: 0,
            data_off: 0,
            data_len: 0,
            digest: 0,
            cksum_kind: CKSUM_KIND_FNV,
            ext_map: 0,
        }; SLOT_COUNT];
        for (s, slot) in slots.iter_mut().enumerate() {
            let sh = off + MI_SLOT0 + s as u64 * SLOT_HDR_SIZE;
            *slot = SlotHeader {
                state: SlotState::from_u64(typed::read_u64(dev, sh + SH_STATE)?)?,
                version: typed::read_u64(dev, sh + SH_VERSION)?,
                checksum: typed::read_u64(dev, sh + SH_CHECKSUM)?,
                data_off: typed::read_u64(dev, sh + SH_DATA_OFF)?,
                data_len: typed::read_u64(dev, sh + SH_DATA_LEN)?,
                digest: typed::read_u64(dev, sh + SH_DIGEST)?,
                cksum_kind: typed::read_u64(dev, sh + SH_CKSUM_KIND)?,
                ext_map: typed::read_u64(dev, sh + SH_EXT_MAP)?,
            };
        }

        let mut tensors = Vec::with_capacity(layers as usize);
        for i in 0..layers {
            let t = off + MI_TENSORS + i as u64 * TREC_SIZE;
            let (tname, _) = typed::read_str(dev, t)?;
            let mut byte = [0u8; 1];
            dev.read(t + TREC_DTYPE, &mut byte)?;
            let dtype = DType::from_code(byte[0])
                .ok_or_else(|| PortusError::Daemon(format!("bad dtype code {}", byte[0])))?;
            dev.read(t + TREC_NDIM, &mut byte)?;
            let ndim = byte[0] as usize;
            let mut shape = Vec::with_capacity(ndim);
            for d in 0..ndim {
                shape.push(typed::read_u64(dev, t + TREC_DIMS + d as u64 * 8)?);
            }
            let rel_off = typed::read_u64(dev, t + TREC_RELOFF)?;
            tensors.push(TensorRecord {
                meta: TensorMeta::new(tname, dtype, shape),
                rel_off,
            });
        }
        Ok(MIndex {
            offset: off,
            name,
            flags,
            total_bytes,
            tensors,
            slots,
        })
    }

    /// Durably transitions a slot to `Active` with the new version
    /// (checksum cleared). Step 2 of the persistence ordering.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn mark_slot_active(&self, mi: &MIndex, slot: usize, version: u64) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_VERSION, version)?;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, 0)?;
        typed::write_u64(&self.dev, sh + SH_DIGEST, 0)?;
        typed::write_u64(&self.dev, sh + SH_CKSUM_KIND, CKSUM_KIND_FNV)?;
        // One cache line holds the whole header, so this flush also
        // covers the digest words at no extra cost.
        self.dev.persist(sh + SH_VERSION, 16)?;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Active.to_u64())?;
        self.dev.persist(sh + SH_STATE, 8)?;
        Ok(())
    }

    /// Durably transitions a slot to `Done` with its data checksum.
    /// Step 3 of the persistence ordering: data must already be
    /// persisted.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn mark_slot_done(&self, mi: &MIndex, slot: usize, checksum: u64) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, checksum)?;
        self.dev.persist(sh + SH_CHECKSUM, 8)?;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Done.to_u64())?;
        self.dev.persist(sh + SH_STATE, 8)?;
        Ok(())
    }

    /// Durably transitions a slot to `Done` validated by the positional
    /// `digest` ([`CKSUM_KIND_DIGEST`]) instead of the sequential FNV —
    /// the form the striped datapath uses after combining per-run
    /// digests. Same persistence ordering as [`Index::mark_slot_done`];
    /// the digest words share the header's cache line so the flip costs
    /// exactly the same flushes.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn mark_slot_done_digest(&self, mi: &MIndex, slot: usize, digest: u64) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, 0)?;
        typed::write_u64(&self.dev, sh + SH_DIGEST, digest)?;
        typed::write_u64(&self.dev, sh + SH_CKSUM_KIND, CKSUM_KIND_DIGEST)?;
        self.dev.persist(sh + SH_CHECKSUM, 8)?;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Done.to_u64())?;
        self.dev.persist(sh + SH_STATE, 8)?;
        Ok(())
    }

    /// Durably resets a slot to `Empty` (used by the repacker).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn mark_slot_empty(&self, mi: &MIndex, slot: usize) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Empty.to_u64())?;
        self.dev.persist(sh + SH_STATE, 8)?;
        Ok(())
    }

    /// Durably restores a slot header to `pre` — the header captured
    /// just before [`Index::mark_slot_active`] — after a checkpoint that
    /// moved **no** data into the slot failed. Only `version`,
    /// `checksum`, and (last, so a crash mid-revert still leaves the
    /// slot invalid) `state` are rewritten: `data_off`/`data_len` stay
    /// as they are, because [`Index::ensure_slot_region`] may have
    /// legitimately allocated a fresh region the slot keeps.
    ///
    /// The version field is special-cased to keep
    /// [`MIndex::next_version`]'s high-water invariant: when `pre` was
    /// `Done` the exact pre-call version is restored (the header must
    /// keep describing its still-valid data), but for a non-`Done` `pre`
    /// the *larger* of the pre-call version and the just-issued on-media
    /// version is kept, so the failed checkpoint's version number is
    /// never reissued.
    ///
    /// Must not be used when any data landed in a previously-`Done`
    /// slot — the old bytes are clobbered and the pre-call checksum
    /// would falsely validate them; use [`Index::collapse_slot`] there.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn revert_slot(&self, mi: &MIndex, slot: usize, pre: &SlotHeader) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        let version = if pre.state == SlotState::Done {
            pre.version
        } else {
            pre.version
                .max(typed::read_u64(&self.dev, sh + SH_VERSION)?)
        };
        typed::write_u64(&self.dev, sh + SH_VERSION, version)?;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, pre.checksum)?;
        typed::write_u64(&self.dev, sh + SH_DIGEST, pre.digest)?;
        typed::write_u64(&self.dev, sh + SH_CKSUM_KIND, pre.cksum_kind)?;
        self.dev.persist(sh + SH_VERSION, 16)?;
        typed::write_u64(&self.dev, sh + SH_STATE, pre.state.to_u64())?;
        self.dev.persist(sh + SH_STATE, 8)?;
        Ok(())
    }

    /// Durably collapses a slot to `Empty` with the checksum cleared,
    /// abandoning whatever partial data a failed checkpoint left in its
    /// region. The region itself stays attached for reuse, and the
    /// slot's version is deliberately *kept*: it was already issued to
    /// the failed checkpoint, and [`MIndex::next_version`] uses it as a
    /// high-water mark so the number is never handed out twice.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn collapse_slot(&self, mi: &MIndex, slot: usize) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, 0)?;
        typed::write_u64(&self.dev, sh + SH_DIGEST, 0)?;
        typed::write_u64(&self.dev, sh + SH_CKSUM_KIND, CKSUM_KIND_FNV)?;
        self.dev.persist(sh + SH_CHECKSUM, 8)?;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Empty.to_u64())?;
        self.dev.persist(sh + SH_STATE, 8)?;
        Ok(())
    }

    /// Durably detaches a slot's data region (repacker): the slot
    /// becomes `Empty` with `data_off = 0`. The region itself must be
    /// freed by the caller. Unlike [`Index::collapse_slot`], the version
    /// is zeroed too: reclaiming a slot is an explicit statement that
    /// its never-acknowledged version is forgotten, so the model's
    /// version sequence resumes from the surviving headers.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn clear_slot_region(&self, mi: &MIndex, slot: usize) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Empty.to_u64())?;
        typed::write_u64(&self.dev, sh + SH_VERSION, 0)?;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, 0)?;
        typed::write_u64(&self.dev, sh + SH_DATA_OFF, 0)?;
        typed::write_u64(&self.dev, sh + SH_DIGEST, 0)?;
        typed::write_u64(&self.dev, sh + SH_CKSUM_KIND, CKSUM_KIND_FNV)?;
        typed::write_u64(&self.dev, sh + SH_EXT_MAP, 0)?;
        self.dev.persist(sh, SLOT_HDR_SIZE)?;
        Ok(())
    }

    /// Durably rebinds a sealed slot from its staging region to an
    /// extent map: `ext_map = map_off` and `data_off = 0` land in one
    /// header persist. The header is a single cache line, so the flip
    /// is atomic — no crash state exists where both or neither
    /// reference the checkpoint's bytes. The caller frees the detached
    /// staging region afterwards (a crash in between leaves it
    /// unreachable, and recovery GCs it).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn publish_slot_extents(&self, mi: &MIndex, slot: usize, map_off: u64) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_DATA_OFF, 0)?;
        typed::write_u64(&self.dev, sh + SH_EXT_MAP, map_off)?;
        self.dev.persist(sh, SLOT_HDR_SIZE)?;
        Ok(())
    }

    /// Durably empties an extent-mapped slot in one header persist:
    /// `state = Empty`, integrity words cleared, `ext_map = 0`; the
    /// version survives as the high-water mark (like
    /// [`Index::collapse_slot`]). The caller drops the extent
    /// references and frees the map region *afterwards* — a crash in
    /// between only over-counts refcounts, which recovery recounts from
    /// the surviving maps.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn detach_slot_extents(&self, mi: &MIndex, slot: usize) -> PortusResult<()> {
        let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
        typed::write_u64(&self.dev, sh + SH_STATE, SlotState::Empty.to_u64())?;
        typed::write_u64(&self.dev, sh + SH_CHECKSUM, 0)?;
        typed::write_u64(&self.dev, sh + SH_DIGEST, 0)?;
        typed::write_u64(&self.dev, sh + SH_CKSUM_KIND, CKSUM_KIND_FNV)?;
        typed::write_u64(&self.dev, sh + SH_EXT_MAP, 0)?;
        self.dev.persist(sh, SLOT_HDR_SIZE)?;
        Ok(())
    }

    /// Ensures a slot has a data region, re-allocating one if the
    /// repacker reclaimed it. Returns the (possibly updated) header.
    ///
    /// # Errors
    ///
    /// Allocation and device errors.
    pub fn ensure_slot_region(&self, mi: &mut MIndex, slot: usize) -> PortusResult<SlotHeader> {
        if mi.slots[slot].data_off == 0 {
            let hash = name_hash(&mi.name);
            let region = self
                .alloc
                .alloc_aligned(mi.total_bytes.max(4096), 4096, hash)?;
            let sh = mi.offset + MI_SLOT0 + slot as u64 * SLOT_HDR_SIZE;
            typed::write_u64(&self.dev, sh + SH_DATA_OFF, region.offset)?;
            typed::write_u64(&self.dev, sh + SH_DATA_LEN, mi.total_bytes)?;
            self.dev.persist(sh + SH_DATA_OFF, 16)?;
            mi.slots[slot].data_off = region.offset;
            mi.slots[slot].data_len = mi.total_bytes;
        }
        Ok(mi.slots[slot])
    }

    /// Durably sets the job-complete flag.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn set_job_complete(&self, mi: &MIndex) -> PortusResult<()> {
        let flags = typed::read_u64(&self.dev, mi.offset + MI_FLAGS)? | FLAG_JOB_COMPLETE;
        typed::write_u64(&self.dev, mi.offset + MI_FLAGS, flags)?;
        self.dev.persist(mi.offset + MI_FLAGS, 8)?;
        Ok(())
    }

    /// FNV-1a checksum of a slot's data region (reads PMem).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn slot_checksum(&self, mi: &MIndex, slot: usize) -> PortusResult<u64> {
        let hdr = mi.slots[slot];
        with_io_buf(|buf| {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            let mut pos = 0u64;
            while pos < hdr.data_len {
                let chunk = ((hdr.data_len - pos) as usize).min(buf.len());
                self.dev.read(hdr.data_off + pos, &mut buf[..chunk])?;
                for &b in &buf[..chunk] {
                    hash ^= b as u64;
                    hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
                }
                pos += chunk as u64;
            }
            Ok(hash)
        })
    }

    /// Positional digest of a slot's data region (reads PMem) — the
    /// [`CKSUM_KIND_DIGEST`] counterpart of [`Index::slot_checksum`].
    /// Because [`region_digest`] keys each byte by its slot-relative
    /// offset and chunks combine with [`combine_digests`], this matches
    /// the sum of per-run digests the striped datapath sealed with, in
    /// any order and at any chunking.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn slot_digest(&self, mi: &MIndex, slot: usize) -> PortusResult<u64> {
        let hdr = mi.slots[slot];
        with_io_buf(|buf| {
            let mut acc: u64 = 0;
            let mut pos = 0u64;
            while pos < hdr.data_len {
                let chunk = ((hdr.data_len - pos) as usize).min(buf.len());
                self.dev.read(hdr.data_off + pos, &mut buf[..chunk])?;
                acc = combine_digests(acc, region_digest(&buf[..chunk], pos));
                pos += chunk as u64;
            }
            Ok(acc)
        })
    }

    /// Removes a model: clears its table entry first (so recovery never
    /// sees it again), then frees its allocations. Ownership is decided
    /// by the offsets the model's own MIndex references — **never** by
    /// the name-hash tag alone, because FNV-1a collisions between two
    /// live model names would otherwise free the other model's MIndex
    /// and TensorData. The tag check stays as a belt-and-braces filter.
    ///
    /// Extent-mapped slots drop their references first, so shared
    /// extents survive for the other fine-tunes that hold them; the
    /// refcount-0 residue is left for the repacker's sweep.
    ///
    /// # Errors
    ///
    /// Device/allocator errors.
    pub fn remove_model(&self, mi: &MIndex) -> PortusResult<()> {
        self.remove_model_at(&mi.name, mi.offset)
    }

    /// [`Index::remove_model`] addressed by `(name, offset)` directly.
    /// Callers that already resolved the name (the daemon's drop path)
    /// use this to avoid loading the MIndex twice: the record is read
    /// exactly once here, *after* the table entry is retired, so the
    /// headers freed below can never predate a concurrent reclaim or
    /// extent publish.
    ///
    /// # Errors
    ///
    /// Device/allocator errors.
    pub fn remove_model_at(&self, name: &str, offset: u64) -> PortusResult<()> {
        let hash = name_hash(name);
        for slot in 0..self.table_cap {
            let entry = self.entry_offset(slot);
            if typed::read_u64(&self.dev, entry)? == ENTRY_LIVE
                && typed::read_u64(&self.dev, entry + 8)? == hash
                && typed::read_u64(&self.dev, entry + 16)? == offset
            {
                typed::write_u64(&self.dev, entry, ENTRY_EMPTY)?;
                self.dev.persist(entry, 8)?;
                break;
            }
        }
        // The single authoritative read of the record being removed.
        let mi = self.load_mindex(offset)?;
        let mut owned: HashSet<u64> = HashSet::new();
        owned.insert(mi.offset);
        for hdr in &mi.slots {
            if hdr.data_off != 0 {
                owned.insert(hdr.data_off);
            }
            if hdr.ext_map != 0 {
                owned.insert(hdr.ext_map);
                if let Some(store) = self.extents.get() {
                    for ext_slot in read_extent_map(&self.dev, hdr.ext_map)?.extents {
                        store.decref(ext_slot)?;
                    }
                }
            }
        }
        for a in self.alloc.live_allocations()? {
            if a.tag == hash && owned.contains(&a.offset) {
                self.alloc.free(&a)?;
            }
        }
        Ok(())
    }

    /// All live (hash, mindex offset) table entries.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn live_entries(&self) -> PortusResult<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        for slot in 0..self.table_cap {
            let entry = self.entry_offset(slot);
            if typed::read_u64(&self.dev, entry)? == ENTRY_LIVE {
                out.push((
                    typed::read_u64(&self.dev, entry + 8)?,
                    typed::read_u64(&self.dev, entry + 16)?,
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_pmem::{CrashSpec, PmemMode};
    use portus_sim::SimContext;

    fn fresh() -> (Arc<PmemDevice>, Index) {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 64 << 20);
        let index = Index::format(dev.clone(), 32, 256).unwrap();
        (dev, index)
    }

    fn metas(n: usize, bytes: u64) -> Vec<TensorMeta> {
        (0..n)
            .map(|i| TensorMeta::new(format!("t{i}"), DType::F32, vec![bytes / 4]))
            .collect()
    }

    #[test]
    fn create_and_load_round_trips() {
        let (_dev, index) = fresh();
        let mi = index.create_model("bert", &metas(5, 4096)).unwrap();
        assert_eq!(mi.total_bytes, 5 * 4096);
        assert_eq!(mi.tensors.len(), 5);
        assert_eq!(mi.tensors[3].rel_off, 3 * 4096);
        let loaded = index.load_mindex(mi.offset).unwrap();
        assert_eq!(loaded.name, "bert");
        assert_eq!(loaded.tensors, mi.tensors);
        assert_eq!(loaded.slots[0].data_off, mi.slots[0].data_off);
        assert_ne!(loaded.slots[0].data_off, loaded.slots[1].data_off);
    }

    #[test]
    fn data_slots_are_page_aligned_and_disjoint() {
        let (_dev, index) = fresh();
        let mi = index.create_model("m", &metas(3, 1000)).unwrap();
        for s in mi.slots {
            assert_eq!(s.data_off % 4096, 0);
        }
        let (a, b) = (mi.slots[0], mi.slots[1]);
        assert!(a.data_off + a.data_len <= b.data_off || b.data_off + b.data_len <= a.data_off);
    }

    #[test]
    fn target_slot_never_hits_latest_done() {
        let (_dev, index) = fresh();
        let mut mi = index.create_model("m", &metas(1, 64)).unwrap();
        assert_eq!(mi.target_slot(), 0);
        index.mark_slot_active(&mi, 0, 1).unwrap();
        index.mark_slot_done(&mi, 0, 0xAB).unwrap();
        mi = index.load_mindex(mi.offset).unwrap();
        assert_eq!(mi.latest_done().unwrap().0, 0);
        assert_eq!(mi.target_slot(), 1);
        index.mark_slot_active(&mi, 1, 2).unwrap();
        index.mark_slot_done(&mi, 1, 0xCD).unwrap();
        mi = index.load_mindex(mi.offset).unwrap();
        assert_eq!(mi.latest_done().unwrap(), (1, mi.slots[1]));
        assert_eq!(mi.target_slot(), 0);
        assert_eq!(mi.valid_versions(), 2);
    }

    #[test]
    fn revert_slot_restores_the_pre_call_header() {
        let (_dev, index) = fresh();
        let mut mi = index.create_model("m", &metas(1, 64)).unwrap();
        // v1 lands in slot 0 and completes.
        index.mark_slot_active(&mi, 0, 1).unwrap();
        index.mark_slot_done(&mi, 0, 0xAB).unwrap();
        mi = index.load_mindex(mi.offset).unwrap();
        // v2 targets slot 1; its pull fails with nothing landed.
        let pre = mi.slots[1];
        index.mark_slot_active(&mi, 1, 2).unwrap();
        index.revert_slot(&mi, 1, &pre).unwrap();
        let after = index.load_mindex(mi.offset).unwrap();
        assert_eq!(after.slots[1].state, pre.state);
        assert_eq!(after.slots[1].checksum, pre.checksum);
        assert_eq!(after.slots[1].data_off, pre.data_off);
        // The issued version survives as a high-water mark: v2 was
        // handed out, so the next checkpoint must be v3, not v2 again.
        assert_eq!(after.slots[1].version, 2);
        assert_eq!(after.next_version(), 3);
        assert_eq!(after.latest_done().unwrap().1.version, 1);
    }

    #[test]
    fn revert_of_a_done_pre_header_is_byte_identical() {
        let (_dev, index) = fresh();
        let mut mi = index.create_model("m", &metas(1, 64)).unwrap();
        index.mark_slot_active(&mi, 0, 5).unwrap();
        index.mark_slot_done(&mi, 0, 0xAB).unwrap();
        mi = index.load_mindex(mi.offset).unwrap();
        let pre = mi.slots[0];
        // A restore-side caller reverting a Done header gets it back
        // exactly: the data is still valid and the checksum must match.
        index.revert_slot(&mi, 0, &pre).unwrap();
        let after = index.load_mindex(mi.offset).unwrap();
        assert_eq!(after.slots[0], pre);
    }

    #[test]
    fn collapse_slot_empties_but_keeps_the_region() {
        let (_dev, index) = fresh();
        let mut mi = index.create_model("m", &metas(1, 64)).unwrap();
        index.mark_slot_active(&mi, 0, 1).unwrap();
        mi = index.load_mindex(mi.offset).unwrap();
        let data_off = mi.slots[0].data_off;
        index.collapse_slot(&mi, 0).unwrap();
        let after = index.load_mindex(mi.offset).unwrap();
        assert_eq!(after.slots[0].state, SlotState::Empty);
        assert_eq!(
            after.slots[0].version, 1,
            "the issued version is the high-water mark"
        );
        assert_eq!(after.next_version(), 2);
        assert_eq!(after.slots[0].checksum, 0);
        assert_eq!(after.slots[0].data_off, data_off, "region stays attached");
        assert!(after.latest_done().is_none());
    }

    #[test]
    fn clear_slot_region_forgets_the_version() {
        let (_dev, index) = fresh();
        let mut mi = index.create_model("m", &metas(1, 64)).unwrap();
        index.mark_slot_active(&mi, 0, 7).unwrap();
        mi = index.load_mindex(mi.offset).unwrap();
        index.clear_slot_region(&mi, 0).unwrap();
        let after = index.load_mindex(mi.offset).unwrap();
        assert_eq!(after.slots[0].state, SlotState::Empty);
        assert_eq!(after.slots[0].version, 0, "explicit reclaim resets");
        assert_eq!(after.slots[0].data_off, 0);
        assert_eq!(after.next_version(), 1);
    }

    #[test]
    fn recovery_rebuilds_model_map() {
        let (dev, index) = fresh();
        index.create_model("alpha", &metas(2, 128)).unwrap();
        index.create_model("beta", &metas(3, 128)).unwrap();
        drop(index);
        dev.crash(CrashSpec::LoseAll);

        let (index2, map) = Index::recover(dev).unwrap();
        assert_eq!(map.len(), 2);
        let mi = index2.load_mindex(map.get("beta").unwrap()).unwrap();
        assert_eq!(mi.tensors.len(), 3);
    }

    #[test]
    fn recovery_gcs_orphan_allocations() {
        let (dev, index) = fresh();
        index.create_model("kept", &metas(1, 128)).unwrap();
        // Orphan: an allocation tagged with a hash that no live entry has.
        index.allocator().alloc(4096, 0xDEAD).unwrap();
        let live_before = index.allocator().live_allocations().unwrap().len();
        assert_eq!(live_before, 4); // mindex + 2 slots + orphan
        drop(index);

        let (index2, _map) = Index::recover(dev).unwrap();
        assert_eq!(index2.allocator().live_allocations().unwrap().len(), 3);
    }

    #[test]
    fn crash_before_publish_leaves_no_model() {
        let (dev, index) = fresh();
        // Simulate crash mid-create: MIndex persisted but entry only
        // CLAIMED. We emulate by claiming an entry manually.
        index.create_model("real", &metas(1, 64)).unwrap();
        let entry1 = SUPER_SIZE + TABLE_ENTRY_SIZE; // second entry
        dev.cas_u64_persist(entry1, ENTRY_EMPTY, ENTRY_CLAIMED)
            .unwrap()
            .unwrap();
        dev.crash(CrashSpec::LoseAll);

        let (index2, map) = Index::recover(dev).unwrap();
        assert_eq!(map.len(), 1);
        assert!(map.contains("real"));
        // The claimed entry was rolled back and is reusable.
        index2.create_model("second", &metas(1, 64)).unwrap();
    }

    #[test]
    fn remove_model_frees_space() {
        let (_dev, index) = fresh();
        let free0 = index.allocator().free_bytes();
        let mi = index.create_model("temp", &metas(4, 8192)).unwrap();
        assert!(index.allocator().free_bytes() < free0);
        index.remove_model(&mi).unwrap();
        assert_eq!(index.allocator().free_bytes(), free0);
        assert!(index.live_entries().unwrap().is_empty());
    }

    #[test]
    fn names_too_long_are_rejected() {
        let (_dev, index) = fresh();
        let long = "x".repeat(300);
        assert!(matches!(
            index.create_model(&long, &metas(1, 64)),
            Err(PortusError::NameTooLong(_))
        ));
        let bad_tensor = vec![TensorMeta::new("y".repeat(200), DType::F32, vec![16])];
        assert!(matches!(
            index.create_model("ok", &bad_tensor),
            Err(PortusError::NameTooLong(_))
        ));
    }

    #[test]
    fn too_many_dims_rejected() {
        let (_dev, index) = fresh();
        let bad = vec![TensorMeta::new("t", DType::F32, vec![1, 2, 3, 4, 5])];
        assert!(matches!(
            index.create_model("m", &bad),
            Err(PortusError::StructureMismatch(_))
        ));
    }

    #[test]
    fn slot_checksum_reflects_data() {
        let (dev, index) = fresh();
        let mi = index.create_model("m", &metas(1, 4096)).unwrap();
        let c0 = index.slot_checksum(&mi, 0).unwrap();
        dev.write(mi.slots[0].data_off, &[7u8; 100]).unwrap();
        let c1 = index.slot_checksum(&mi, 0).unwrap();
        assert_ne!(c0, c1);
    }

    #[test]
    fn region_digest_tiles_commute() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7 + 3) as u8).collect();
        let whole = region_digest(&data, 0);
        // Any partition into offset-tagged tiles sums to the whole,
        // regardless of combine order.
        let a = region_digest(&data[..100], 0);
        let b = region_digest(&data[100..700], 100);
        let c = region_digest(&data[700..], 700);
        assert_eq!(combine_digests(combine_digests(a, b), c), whole);
        assert_eq!(combine_digests(c, combine_digests(b, a)), whole);
        // Position matters: the same bytes at a different base differ.
        assert_ne!(
            region_digest(&data[..100], 0),
            region_digest(&data[..100], 4)
        );
    }

    #[test]
    fn slot_digest_matches_run_combination() {
        let (dev, index) = fresh();
        let mi = index.create_model("m", &metas(1, 4096)).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        dev.write(mi.slots[0].data_off, &payload).unwrap();
        let full = index.slot_digest(&mi, 0).unwrap();
        let d0 = region_digest(&payload[..1500], 0);
        let d1 = region_digest(&payload[1500..], 1500);
        assert_eq!(combine_digests(d1, d0), full);
    }

    #[test]
    fn table_full_rolls_back() {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 16 << 20);
        let index = Index::format(dev, 1, 64).unwrap();
        index.create_model("only", &metas(1, 64)).unwrap();
        let free = index.allocator().free_bytes();
        assert!(index.create_model("overflow", &metas(1, 64)).is_err());
        assert_eq!(index.allocator().free_bytes(), free, "rollback must free");
    }
}
