//! k-way replicated client: fan every checkpoint out to several
//! daemons and fall through replicas on restore.
//!
//! The fleet simulation (`portus-cluster`) models placement and
//! daemon-loss analytically; [`ReplicatedClient`] is the real-plane
//! counterpart on the actual datapath. It wraps one [`PortusClient`]
//! per replica daemon (all over the same compute-side NIC), registers
//! the model everywhere, checkpoints everywhere, and restores from the
//! best replica — falling through to the next one when a replica's
//! datapath is down or its copy is missing or corrupt.
//!
//! The replica order is fixed at construction (the caller typically
//! derives it from `portus_cluster::replica_set`, so the simulated
//! placement and the real datapath agree on where a model lives).

use std::sync::Arc;

use portus_dnn::ModelInstance;
use portus_rdma::Nic;

use crate::client::{CheckpointReport, PortusClient, RestoreReport};
use crate::daemon::PortusDaemon;
use crate::{PortusError, PortusResult};

/// A client that mirrors one model across `k` daemons.
pub struct ReplicatedClient {
    clients: Vec<PortusClient>,
}

impl std::fmt::Debug for ReplicatedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedClient")
            .field("replicas", &self.clients.len())
            .finish()
    }
}

/// Outcome of a replicated checkpoint: which replicas now hold the new
/// version and which failed (the checkpoint as a whole succeeds while
/// at least one replica does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedCheckpoint {
    /// Per-replica reports, for the replicas that succeeded, in
    /// replica order.
    pub reports: Vec<(usize, CheckpointReport)>,
    /// `(replica index, rendered error)` for the replicas that failed.
    pub failed: Vec<(usize, String)>,
}

impl ReplicatedCheckpoint {
    /// The version number the surviving replicas durably hold.
    pub fn version(&self) -> u64 {
        self.reports
            .iter()
            .map(|(_, r)| r.version)
            .max()
            .unwrap_or(0)
    }

    /// How many replicas hold the new version.
    pub fn survivors(&self) -> usize {
        self.reports.len()
    }
}

impl ReplicatedClient {
    /// Connects to every daemon in `daemons`, in replica order, from
    /// `client_nic`.
    ///
    /// # Panics
    ///
    /// If `daemons` is empty: a zero-replica client can neither
    /// checkpoint nor restore, so the misconfiguration is rejected up
    /// front (the same contract as `FleetConfig::uniform`).
    pub fn connect(daemons: &[&PortusDaemon], client_nic: Arc<Nic>) -> ReplicatedClient {
        assert!(
            !daemons.is_empty(),
            "ReplicatedClient::connect needs at least one daemon (got 0)"
        );
        ReplicatedClient {
            clients: daemons
                .iter()
                .map(|d| PortusClient::connect(d, Arc::clone(&client_nic)))
                .collect(),
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.clients.len()
    }

    /// The client for one replica (for direct, single-replica
    /// operations like `stats`).
    pub fn replica(&self, index: usize) -> &PortusClient {
        &self.clients[index]
    }

    /// Registers `model` on every replica daemon.
    ///
    /// # Errors
    ///
    /// Fails fast on the first replica that rejects the registration —
    /// a half-registered model would silently checkpoint at reduced
    /// redundancy.
    pub fn register_model(&self, model: &ModelInstance) -> PortusResult<()> {
        for client in &self.clients {
            client.register_model(model)?;
        }
        Ok(())
    }

    /// Checkpoints `model` on every replica daemon.
    ///
    /// Succeeds if at least one replica durably holds the new version;
    /// the report carries both survivors and failures so the caller
    /// can see degraded redundancy.
    ///
    /// # Errors
    ///
    /// [`PortusError::ReplicasExhausted`] when every replica fails.
    pub fn checkpoint(&self, model: &str) -> PortusResult<ReplicatedCheckpoint> {
        let mut reports = Vec::new();
        let mut failed = Vec::new();
        for (i, client) in self.clients.iter().enumerate() {
            match client.checkpoint(model) {
                Ok(r) => reports.push((i, r)),
                Err(e) => failed.push((i, e.to_string())),
            }
        }
        if reports.is_empty() {
            return Err(PortusError::ReplicasExhausted {
                model: model.to_string(),
                op: "checkpoint".into(),
                attempts: failed,
            });
        }
        Ok(ReplicatedCheckpoint { reports, failed })
    }

    /// The latest version every listed replica could serve, per
    /// replica: `(replica index, latest complete version)` for the
    /// replicas that are reachable and hold the model.
    pub fn available_versions(&self, model: &str) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for (i, client) in self.clients.iter().enumerate() {
            if let Ok(models) = client.list_models() {
                if let Some(v) = models
                    .iter()
                    .find(|m| m.name == model)
                    .and_then(|m| m.latest_version)
                {
                    out.push((i, v));
                }
            }
        }
        out
    }

    /// Restores `model` from the best replica, falling through on
    /// failure.
    ///
    /// Replicas are ranked by the latest version they advertise
    /// (highest first, replica order breaking ties), then tried in
    /// rank order; a replica whose datapath fails, whose copy is
    /// missing, or whose copy fails verification is skipped in favor
    /// of the next. Replicas that advertise nothing are still tried
    /// last — `list_models` can race a completing checkpoint.
    ///
    /// # Errors
    ///
    /// [`PortusError::ReplicasExhausted`] when no replica can serve
    /// a checkpoint.
    pub fn restore(&self, model: &ModelInstance) -> PortusResult<RestoreReport> {
        self.restore_version(model, None)
    }

    /// [`ReplicatedClient::restore`], pinned to a specific version
    /// (`None` = each replica's latest). Sharded recovery pins every
    /// shard to a common version this way.
    ///
    /// # Errors
    ///
    /// [`PortusError::ReplicasExhausted`] when no replica can serve
    /// the requested checkpoint.
    pub fn restore_version(
        &self,
        model: &ModelInstance,
        version: Option<u64>,
    ) -> PortusResult<RestoreReport> {
        let advertised = self.available_versions(&model.spec().name);
        let mut order: Vec<usize> = (0..self.clients.len()).collect();
        order.sort_by_key(|&i| {
            let v = advertised.iter().find(|(r, _)| *r == i).map(|(_, v)| *v);
            // Highest advertised version first; unreachable/empty
            // replicas (None) sink to the end; replica order breaks
            // ties.
            (std::cmp::Reverse(v), i)
        });

        let mut attempts = Vec::new();
        for i in order {
            match self.clients[i].restore_version(model, version) {
                Ok(report) => return Ok(report),
                Err(
                    e @ (PortusError::DatapathFailed { .. }
                    | PortusError::ChecksumMismatch { .. }
                    | PortusError::NoValidCheckpoint(_)
                    | PortusError::ModelNotFound(_)),
                ) => attempts.push((i, e.to_string())),
                Err(e) => return Err(e),
            }
        }
        Err(PortusError::ReplicasExhausted {
            model: model.spec().name.clone(),
            op: "restore".into(),
            attempts,
        })
    }

    /// Marks the job complete on every replica that acknowledges it
    /// (best effort — a dead replica must not block completion).
    pub fn mark_complete(&self, model: &str) {
        for client in &self.clients {
            let _ = client.mark_complete(model);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, PortusDaemon};
    use portus_dnn::{test_spec, Materialization};
    use portus_mem::GpuDevice;
    use portus_pmem::{PmemDevice, PmemMode};
    use portus_rdma::{Fabric, FaultSpec, NodeId};
    use portus_sim::SimContext;

    struct Rig {
        fabric: Fabric,
        daemons: Vec<Arc<PortusDaemon>>,
        gpu: Arc<GpuDevice>,
    }

    fn rig(daemons: usize) -> Rig {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        fabric.add_nic(NodeId(0));
        let mut out = Vec::new();
        for i in 0..daemons {
            fabric.add_nic(NodeId(1 + i as u32));
            let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
            out.push(
                PortusDaemon::start(&fabric, NodeId(1 + i as u32), pmem, DaemonConfig::default())
                    .expect("daemon"),
            );
        }
        let gpu = GpuDevice::new(ctx, 0, 1 << 30);
        Rig {
            fabric,
            daemons: out,
            gpu,
        }
    }

    fn client(r: &Rig) -> ReplicatedClient {
        let refs: Vec<&PortusDaemon> = r.daemons.iter().map(|d| d.as_ref()).collect();
        let nic = r.fabric.nic(NodeId(0)).expect("nic");
        ReplicatedClient::connect(&refs, nic)
    }

    #[test]
    #[should_panic(expected = "at least one daemon")]
    fn zero_replicas_rejected_up_front() {
        let r = rig(1);
        let nic = r.fabric.nic(NodeId(0)).expect("nic");
        ReplicatedClient::connect(&[], nic);
    }

    #[test]
    fn checkpoint_lands_on_every_replica() {
        let r = rig(3);
        let c = client(&r);
        let spec = test_spec("bert", 4, 4096);
        let mut model =
            ModelInstance::materialize(&spec, &r.gpu, 7, Materialization::Owned).expect("model");
        c.register_model(&model).expect("register");
        model.train_step();
        let out = c.checkpoint("bert").expect("checkpoint");
        assert_eq!(out.survivors(), 3);
        assert!(out.failed.is_empty());
        assert_eq!(out.version(), 1);
        assert_eq!(c.available_versions("bert"), vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn restore_falls_through_a_dead_replica() {
        let r = rig(2);
        let c = client(&r);
        let spec = test_spec("bert", 4, 4096);
        let mut model =
            ModelInstance::materialize(&spec, &r.gpu, 7, Materialization::Owned).expect("model");
        c.register_model(&model).expect("register");
        model.train_step();
        let saved = model.model_checksum();
        c.checkpoint("bert").expect("checkpoint");

        // Kill replica 0's datapath; the restore must fail over to
        // replica 1 and still produce the checkpointed state.
        r.fabric.arm_faults(NodeId(1), FaultSpec::All).expect("arm");
        model.train_step();
        let report = c.restore(&model).expect("failover restore");
        assert_eq!(report.version, 1);
        assert_eq!(model.model_checksum(), saved);
    }

    #[test]
    fn degraded_checkpoint_reports_the_failed_replica() {
        let r = rig(2);
        let c = client(&r);
        let spec = test_spec("bert", 4, 4096);
        let mut model =
            ModelInstance::materialize(&spec, &r.gpu, 7, Materialization::Owned).expect("model");
        c.register_model(&model).expect("register");
        model.train_step();
        r.fabric.arm_faults(NodeId(2), FaultSpec::All).expect("arm");
        let out = c.checkpoint("bert").expect("degraded checkpoint");
        assert_eq!(out.survivors(), 1);
        assert_eq!(out.failed.len(), 1);
        assert_eq!(out.failed[0].0, 1);
    }

    #[test]
    fn all_replicas_down_is_replicas_exhausted() {
        let r = rig(2);
        let c = client(&r);
        let spec = test_spec("bert", 4, 4096);
        let mut model =
            ModelInstance::materialize(&spec, &r.gpu, 7, Materialization::Owned).expect("model");
        c.register_model(&model).expect("register");
        model.train_step();
        c.checkpoint("bert").expect("checkpoint");
        for i in 0..r.daemons.len() {
            r.fabric
                .arm_faults(NodeId(1 + i as u32), FaultSpec::All)
                .expect("arm");
        }
        let err = c.restore(&model).expect_err("no replica left");
        match err {
            PortusError::ReplicasExhausted {
                model,
                op,
                attempts,
            } => {
                assert_eq!(model, "bert");
                assert_eq!(op, "restore");
                assert_eq!(attempts.len(), 2);
            }
            other => panic!("expected ReplicasExhausted, got {other}"),
        }
    }
}
