//! `portusctl` — manage and share DNN checkpoints on PMem device images.
//!
//! ```text
//! portusctl view DEVICE_IMAGE
//! portusctl dump DEVICE_IMAGE MODEL OUTPUT_FILE
//! portusctl stats SNAPSHOT.json
//! portusctl space SNAPSHOT.json
//! portusctl tenants SNAPSHOT.json
//! portusctl catalog SNAPSHOT.json
//! ```

use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("portusctl — manage DNN checkpoints on persistent memory");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  portusctl view DEVICE_IMAGE");
    eprintln!("  portusctl dump DEVICE_IMAGE MODEL OUTPUT_FILE");
    eprintln!("  portusctl stats SNAPSHOT.json");
    eprintln!("  portusctl space SNAPSHOT.json");
    eprintln!("  portusctl tenants SNAPSHOT.json");
    eprintln!("  portusctl catalog SNAPSHOT.json");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("view") => {
            let Some(image) = args.get(2) else {
                return usage();
            };
            match portus::portusctl::view(Path::new(image)) {
                Ok(models) => {
                    print!("{}", portus::portusctl::render_view(&models));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("portusctl view: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("dump") => {
            let (Some(image), Some(model), Some(out)) = (args.get(2), args.get(3), args.get(4))
            else {
                return usage();
            };
            match portus::portusctl::dump(Path::new(image), model, Path::new(out)) {
                Ok(report) => {
                    println!(
                        "dumped {} v{} ({} tensors, {} bytes) to {}",
                        report.model, report.version, report.tensors, report.bytes, out
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("portusctl dump: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("stats") => {
            let Some(snapshot) = args.get(2) else {
                return usage();
            };
            match portus::portusctl::load_stats(Path::new(snapshot)) {
                Ok(metrics) => {
                    print!("{}", portus::portusctl::render_stats(&metrics));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("portusctl stats: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("tenants") => {
            let Some(snapshot) = args.get(2) else {
                return usage();
            };
            match portus::portusctl::load_stats(Path::new(snapshot)) {
                Ok(metrics) => {
                    print!("{}", portus::portusctl::render_tenants(&metrics));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("portusctl tenants: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("space") => {
            let Some(snapshot) = args.get(2) else {
                return usage();
            };
            match portus::portusctl::load_stats(Path::new(snapshot)) {
                Ok(metrics) => {
                    print!("{}", portus::portusctl::render_space(&metrics));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("portusctl space: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("catalog") => {
            let Some(snapshot) = args.get(2) else {
                return usage();
            };
            match portus::portusctl::load_stats(Path::new(snapshot)) {
                Ok(metrics) => {
                    print!("{}", portus::portusctl::render_catalog(&metrics));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("portusctl catalog: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
