//! End-to-end test of the `portusctl` binary itself: build a device
//! image with real checkpoints, then drive the CLI the way a user
//! would.

use std::process::Command;

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_format::read_checkpoint;
use portus_mem::GpuDevice;
use portus_pmem::{save_image, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn build_image(dir: &std::path::Path) -> std::path::PathBuf {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let client = PortusClient::connect(&daemon, compute);
    let spec = test_spec("cli-model", 6, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 9, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("cli-model").unwrap();
    let image = dir.join("device.img");
    save_image(&pmem, &image).unwrap();
    image
}

#[test]
fn view_and_dump_via_the_binary() {
    let dir = std::env::temp_dir().join(format!("portusctl-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let image = build_image(&dir);
    let bin = env!("CARGO_BIN_EXE_portusctl");

    // portusctl view IMAGE
    let out = Command::new(bin).arg("view").arg(&image).output().unwrap();
    assert!(out.status.success(), "view failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cli-model"), "listing: {stdout}");
    assert!(stdout.contains("MODEL"), "header: {stdout}");

    // portusctl dump IMAGE MODEL OUT
    let dumped = dir.join("cli-model.ckpt");
    let out = Command::new(bin)
        .args([
            "dump",
            image.to_str().unwrap(),
            "cli-model",
            dumped.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "dump failed: {out:?}");
    let file = std::fs::read(&dumped).unwrap();
    let decoded = read_checkpoint(&file[..]).unwrap();
    assert_eq!(decoded.model_name, "cli-model");
    assert_eq!(decoded.tensors.len(), 6);

    // Error paths exit non-zero with a message.
    let out = Command::new(bin)
        .args([
            "dump",
            image.to_str().unwrap(),
            "no-such-model",
            "/dev/null",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not found"));

    let out = Command::new(bin).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage exit code");

    std::fs::remove_dir_all(&dir).ok();
}
