//! Error types for the baseline storage paths.

use std::error::Error;
use std::fmt;

use portus_format::FormatError;
use portus_mem::MemError;
use portus_rdma::RdmaError;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the baseline file systems and checkpointers.
#[derive(Debug)]
pub enum StorageError {
    /// The named file does not exist.
    NotFound(String),
    /// The device ran out of space.
    NoSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes free.
        free: u64,
    },
    /// A container encode/decode failure.
    Format(FormatError),
    /// A memory error during staging.
    Mem(MemError),
    /// A fabric error on the distributed path.
    Rdma(RdmaError),
    /// The restore target does not match the checkpoint structure.
    ModelMismatch(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(path) => write!(f, "no such file: {path}"),
            StorageError::NoSpace { requested, free } => {
                write!(f, "no space: requested {requested} bytes, {free} free")
            }
            StorageError::Format(e) => write!(f, "container error: {e}"),
            StorageError::Mem(e) => write!(f, "memory error: {e}"),
            StorageError::Rdma(e) => write!(f, "fabric error: {e}"),
            StorageError::ModelMismatch(what) => write!(f, "model mismatch: {what}"),
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Format(e) => Some(e),
            StorageError::Mem(e) => Some(e),
            StorageError::Rdma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for StorageError {
    fn from(e: FormatError) -> Self {
        StorageError::Format(e)
    }
}

impl From<MemError> for StorageError {
    fn from(e: MemError) -> Self {
        StorageError::Mem(e)
    }
}

impl From<RdmaError> for StorageError {
    fn from(e: RdmaError) -> Self {
        StorageError::Rdma(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StorageError::NotFound("x.ckpt".into())
            .to_string()
            .contains("x.ckpt"));
        let e = StorageError::from(MemError::NotWritable);
        assert!(Error::source(&e).is_some());
    }
}
