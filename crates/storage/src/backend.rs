//! The file-backend abstraction shared by the baselines.

use portus_sim::SimDuration;

use crate::StorageResult;

/// Per-phase timing of a file write (the buckets of Fig. 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteBreakdown {
    /// Fixed metadata cost (path resolution, permission check, stripe
    /// setup).
    pub metadata: SimDuration,
    /// Network transmission (zero for local backends).
    pub transmit: SimDuration,
    /// Media persistence (page cache + device, or DAX store).
    pub persist: SimDuration,
}

impl WriteBreakdown {
    /// Total write time.
    pub fn total(&self) -> SimDuration {
        self.metadata + self.transmit + self.persist
    }
}

/// Per-phase timing of a file read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadBreakdown {
    /// Fixed metadata cost.
    pub metadata: SimDuration,
    /// Network transmission (zero for local backends).
    pub transmit: SimDuration,
    /// Media read time.
    pub media: SimDuration,
}

impl ReadBreakdown {
    /// Total read time.
    pub fn total(&self) -> SimDuration {
        self.metadata + self.transmit + self.media
    }
}

/// A file system the baseline checkpointer can write containers to.
///
/// Implementations charge their calibrated datapath costs (kernel
/// crossings, copies, transmission, persistence) on the shared virtual
/// clock and counters as real bytes move.
pub trait FileBackend: Send + Sync {
    /// A short label for reports ("ext4-NVMe", "BeeGFS-PMEM").
    fn label(&self) -> &'static str;

    /// Creates/overwrites `path` with `data`.
    ///
    /// # Errors
    ///
    /// Backend-specific failures (no space, fabric errors).
    fn write_file(&self, path: &str, data: Vec<u8>) -> StorageResult<WriteBreakdown>;

    /// Reads `path` fully.
    ///
    /// # Errors
    ///
    /// [`crate::StorageError::NotFound`] if the file does not exist.
    fn read_file(&self, path: &str) -> StorageResult<(Vec<u8>, ReadBreakdown)>;

    /// Removes `path`; returns whether it existed.
    fn delete(&self, path: &str) -> bool;

    /// File size if it exists.
    fn file_size(&self, path: &str) -> Option<u64>;

    /// Whether restore can DMA payloads straight to GPU memory
    /// (GPUDirect Storage).
    fn supports_gds(&self) -> bool {
        false
    }
}
