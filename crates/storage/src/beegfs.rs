//! A BeeGFS-like distributed file system over two-sided RPC-RDMA.
//!
//! Reproduces the baseline datapath of Fig. 3/5(a): a client module on
//! the compute node receives the serialized checkpoint via `write(2)`
//! (kernel crossing #1), dispatches it out of the client kernel as
//! two-sided RPC-over-RDMA messages to the storage daemon (crossing #2),
//! which lands the bytes on PMem with a DAX write (crossing #3). The
//! metadata server round trips make small files disproportionately
//! expensive — the effect behind ResNet50's outsized speedup in Fig. 11.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use portus_rdma::{Fabric, NodeId, QueuePair};
use portus_sim::SimContext;

use crate::{FileBackend, ReadBreakdown, StorageError, StorageResult, WriteBreakdown};

/// RPC chunk size used by the client module.
const CHUNK: usize = 4 << 20;

/// The distributed file system; the handle lives on the compute node
/// and implements [`FileBackend`] like the local systems.
#[derive(Debug)]
pub struct Beegfs {
    ctx: SimContext,
    capacity: u64,
    client_qp: Mutex<QueuePair>,
    server: Arc<ServerState>,
}

#[derive(Debug)]
struct ServerState {
    qp: Mutex<QueuePair>,
    files: RwLock<HashMap<String, Vec<u8>>>,
    used: Mutex<u64>,
}

impl Beegfs {
    /// Mounts a BeeGFS client on `client_node` against a daemon on
    /// `server_node`, with `capacity` bytes of PMem behind the daemon.
    ///
    /// # Panics
    ///
    /// Panics if either node has no NIC on the fabric.
    pub fn mount(
        fabric: &Fabric,
        client_node: NodeId,
        server_node: NodeId,
        capacity: u64,
    ) -> Beegfs {
        let client_nic = fabric.nic(client_node).expect("client NIC");
        let server_nic = fabric.nic(server_node).expect("server NIC");
        let (client_qp, server_qp) = QueuePair::connect(client_nic, server_nic);
        Beegfs {
            ctx: fabric.ctx().clone(),
            capacity,
            client_qp: Mutex::new(client_qp),
            server: Arc::new(ServerState {
                qp: Mutex::new(server_qp),
                files: RwLock::new(HashMap::new()),
                used: Mutex::new(0),
            }),
        }
    }

    /// Bytes currently stored by the daemon.
    pub fn used_bytes(&self) -> u64 {
        *self.server.used.lock()
    }
}

impl FileBackend for Beegfs {
    fn label(&self) -> &'static str {
        "BeeGFS-PMEM"
    }

    fn write_file(&self, path: &str, data: Vec<u8>) -> StorageResult<WriteBreakdown> {
        let ctx = &self.ctx;
        let len = data.len() as u64;

        // Admission: replacing a file frees its old bytes first.
        {
            let files = self.server.files.read();
            let old = files.get(path).map_or(0, |f| f.len() as u64);
            let used = *self.server.used.lock();
            if used - old + len > self.capacity {
                return Err(StorageError::NoSpace {
                    requested: len,
                    free: self.capacity - (used - old),
                });
            }
        }

        // Metadata server round trips + the client write(2) syscall.
        let metadata = ctx.model.beegfs_metadata_op() + ctx.model.kernel_crossing();
        ctx.charge(metadata);
        ctx.stats.record_kernel_crossings(1);

        // Client module dispatches the file out of the kernel as RPC
        // chunks (crossing #2), the daemon reassembles.
        let t0 = ctx.clock.now();
        ctx.charge(ctx.model.kernel_crossing());
        ctx.stats.record_kernel_crossings(1);
        let client_qp = self.client_qp.lock();
        let server_qp = self.server.qp.lock();
        let mut assembled = Vec::with_capacity(data.len());
        for chunk in data.chunks(CHUNK).filter(|c| !c.is_empty()) {
            client_qp.send(chunk.to_vec())?;
            let received = server_qp.recv()?;
            assembled.extend_from_slice(&received);
        }
        if data.is_empty() {
            client_qp.send(Vec::new())?;
            assembled = server_qp.recv()?;
        }
        let transmit = ctx.clock.now().saturating_since(t0);

        // Daemon persists with a DAX write (crossing #3).
        let persist = ctx.model.dax_write(len) + ctx.model.kernel_crossing();
        ctx.charge(persist);
        ctx.stats.record_kernel_crossings(1);
        ctx.stats.record_copy(len);

        let mut files = self.server.files.write();
        let mut used = self.server.used.lock();
        *used -= files.get(path).map_or(0, |f| f.len() as u64);
        *used += len;
        files.insert(path.to_string(), assembled);
        Ok(WriteBreakdown {
            metadata,
            transmit,
            persist,
        })
    }

    fn read_file(&self, path: &str) -> StorageResult<(Vec<u8>, ReadBreakdown)> {
        let ctx = &self.ctx;
        let data = self
            .server
            .files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        let len = data.len() as u64;

        let metadata = ctx.model.beegfs_metadata_op() + ctx.model.kernel_crossing();
        ctx.charge(metadata);
        ctx.stats.record_kernel_crossings(1);

        // Daemon reads PMem, then RPC chunks back to the client module.
        let media = ctx.model.dax_read(len) + ctx.model.kernel_crossing();
        ctx.charge(media);
        ctx.stats.record_kernel_crossings(1);

        let t0 = ctx.clock.now();
        let client_qp = self.client_qp.lock();
        let server_qp = self.server.qp.lock();
        let mut back = Vec::with_capacity(data.len());
        for chunk in data.chunks(CHUNK).filter(|c| !c.is_empty()) {
            server_qp.send(chunk.to_vec())?;
            back.extend_from_slice(&client_qp.recv()?);
        }
        if data.is_empty() {
            server_qp.send(Vec::new())?;
            back = client_qp.recv()?;
        }
        ctx.charge(ctx.model.kernel_crossing());
        ctx.stats.record_kernel_crossings(1);
        let transmit = ctx.clock.now().saturating_since(t0);

        Ok((
            back,
            ReadBreakdown {
                metadata,
                transmit,
                media,
            },
        ))
    }

    fn delete(&self, path: &str) -> bool {
        let mut files = self.server.files.write();
        if let Some(f) = files.remove(path) {
            *self.server.used.lock() -= f.len() as u64;
            true
        } else {
            false
        }
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        self.server.files.read().get(path).map(|f| f.len() as u64)
    }

    fn supports_gds(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_sim::SimDuration;

    fn mounted() -> (SimContext, Beegfs) {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let fs = Beegfs::mount(&fabric, NodeId(0), NodeId(1), 1 << 30);
        (ctx, fs)
    }

    #[test]
    fn distributed_write_read_round_trips() {
        let (_ctx, fs) = mounted();
        let payload: Vec<u8> = (0..10_000_000u32).map(|i| i as u8).collect();
        let wb = fs.write_file("gpt.ckpt", payload.clone()).unwrap();
        assert!(wb.transmit > SimDuration::ZERO, "RPC time must be charged");
        assert!(wb.metadata > SimDuration::from_micros(100), "metadata RTTs");
        let (back, rb) = fs.read_file("gpt.ckpt").unwrap();
        assert_eq!(back, payload);
        assert!(rb.transmit > SimDuration::ZERO);
    }

    #[test]
    fn write_uses_two_sided_protocol_and_three_crossings() {
        let (ctx, fs) = mounted();
        let before = ctx.stats.snapshot();
        fs.write_file("f", vec![0u8; 9 << 20]).unwrap();
        let d = ctx.stats.snapshot().since(&before);
        assert_eq!(d.rdma_two_sided_ops, 3, "9 MiB in 4 MiB chunks = 3 RPCs");
        assert_eq!(
            d.rdma_one_sided_ops, 0,
            "baseline never uses one-sided verbs"
        );
        assert_eq!(d.kernel_crossings, 3, "the three crossings of Fig. 3");
    }

    #[test]
    fn metadata_overhead_dominates_small_files() {
        let (_ctx, fs) = mounted();
        let wb = fs.write_file("tiny", vec![1u8; 4096]).unwrap();
        assert!(
            wb.metadata > wb.transmit + wb.persist,
            "small files must be metadata-bound on BeeGFS"
        );
    }

    #[test]
    fn capacity_and_delete() {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx);
        fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let fs = Beegfs::mount(&fabric, NodeId(0), NodeId(1), 1024);
        assert!(matches!(
            fs.write_file("big", vec![0; 4096]),
            Err(StorageError::NoSpace { .. })
        ));
        fs.write_file("ok", vec![0; 512]).unwrap();
        assert_eq!(fs.used_bytes(), 512);
        assert!(fs.delete("ok"));
        assert_eq!(fs.used_bytes(), 0);
    }

    #[test]
    fn empty_file_round_trips() {
        let (_ctx, fs) = mounted();
        fs.write_file("empty", Vec::new()).unwrap();
        let (back, _) = fs.read_file("empty").unwrap();
        assert!(back.is_empty());
    }
}
