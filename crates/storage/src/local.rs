//! Local file systems: ext4 on NVMe, and ext4-DAX on PMem.

use std::collections::HashMap;

use parking_lot::RwLock;
use portus_sim::{SimContext, SimDuration};

use crate::{FileBackend, ReadBreakdown, StorageError, StorageResult, WriteBreakdown};

/// Shared in-memory file store for the local backends.
#[derive(Debug, Default)]
struct FileStore {
    files: RwLock<HashMap<String, Vec<u8>>>,
    used: RwLock<u64>,
}

impl FileStore {
    fn insert(&self, path: &str, data: Vec<u8>, capacity: u64) -> StorageResult<()> {
        let mut files = self.files.write();
        let mut used = self.used.write();
        let old = files.get(path).map_or(0, |f| f.len() as u64);
        let new_used = *used - old + data.len() as u64;
        if new_used > capacity {
            return Err(StorageError::NoSpace {
                requested: data.len() as u64,
                free: capacity - (*used - old),
            });
        }
        *used = new_used;
        files.insert(path.to_string(), data);
        Ok(())
    }

    fn get(&self, path: &str) -> StorageResult<Vec<u8>> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn remove(&self, path: &str) -> bool {
        let mut files = self.files.write();
        if let Some(data) = files.remove(path) {
            *self.used.write() -= data.len() as u64;
            true
        } else {
            false
        }
    }

    fn size(&self, path: &str) -> Option<u64> {
        self.files.read().get(path).map(|f| f.len() as u64)
    }
}

/// ext4 on a local NVMe SSD (the paper's "ext4-NVMe" baseline): buffered
/// writes through the page cache, block-layer writeback at the device's
/// 2.7 GB/s, O_DIRECT reads on the restore path, and GPUDirect Storage
/// support.
#[derive(Debug)]
pub struct Ext4Nvme {
    ctx: SimContext,
    capacity: u64,
    store: FileStore,
}

impl Ext4Nvme {
    /// Creates a local NVMe file system of `capacity` bytes.
    pub fn new(ctx: SimContext, capacity: u64) -> Ext4Nvme {
        Ext4Nvme {
            ctx,
            capacity,
            store: FileStore::default(),
        }
    }
}

impl FileBackend for Ext4Nvme {
    fn label(&self) -> &'static str {
        "ext4-NVMe"
    }

    fn write_file(&self, path: &str, data: Vec<u8>) -> StorageResult<WriteBreakdown> {
        let len = data.len() as u64;
        let ctx = &self.ctx;
        // Metadata: create/open (path resolution, inode allocation).
        let metadata = ctx.model.ext4_metadata_op() + ctx.model.kernel_crossing();
        ctx.charge(metadata);
        ctx.stats.record_kernel_crossings(1);
        // write(2) + fsync(2): user→page-cache copy, journal/extent
        // overhead, device writeback — 53.7% of the local checkpoint
        // time per Fig. 13.
        let persist = ctx.model.ext4_nvme_write(len) + ctx.model.kernel_crossing() * 2;
        ctx.charge(persist);
        ctx.stats.record_kernel_crossings(2);
        ctx.stats.record_copy(len); // user buffer -> page cache
        self.store.insert(path, data, self.capacity)?;
        Ok(WriteBreakdown {
            metadata,
            transmit: SimDuration::ZERO,
            persist,
        })
    }

    fn read_file(&self, path: &str) -> StorageResult<(Vec<u8>, ReadBreakdown)> {
        let data = self.store.get(path)?;
        let len = data.len() as u64;
        let ctx = &self.ctx;
        let metadata = ctx.model.ext4_metadata_op() + ctx.model.kernel_crossing();
        let media = ctx.model.ext4_nvme_read(len) + ctx.model.kernel_crossing();
        ctx.charge(metadata + media);
        ctx.stats.record_kernel_crossings(2);
        ctx.stats.record_copy(len);
        Ok((
            data,
            ReadBreakdown {
                metadata,
                transmit: SimDuration::ZERO,
                media,
            },
        ))
    }

    fn delete(&self, path: &str) -> bool {
        self.store.remove(path)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        self.store.size(path)
    }

    fn supports_gds(&self) -> bool {
        true
    }
}

/// ext4-DAX directly on a PMem namespace (what the BeeGFS daemon stacks
/// on, §V-A): no page cache, no block layer — stores go straight to
/// media at DAX-write rate.
#[derive(Debug)]
pub struct Ext4Dax {
    ctx: SimContext,
    capacity: u64,
    store: FileStore,
}

impl Ext4Dax {
    /// Creates an ext4-DAX file system of `capacity` bytes.
    pub fn new(ctx: SimContext, capacity: u64) -> Ext4Dax {
        Ext4Dax {
            ctx,
            capacity,
            store: FileStore::default(),
        }
    }
}

impl FileBackend for Ext4Dax {
    fn label(&self) -> &'static str {
        "ext4-DAX"
    }

    fn write_file(&self, path: &str, data: Vec<u8>) -> StorageResult<WriteBreakdown> {
        let len = data.len() as u64;
        let ctx = &self.ctx;
        let metadata = ctx.model.ext4_metadata_op() + ctx.model.kernel_crossing();
        ctx.charge(metadata);
        ctx.stats.record_kernel_crossings(1);
        let persist = ctx.model.dax_write(len) + ctx.model.kernel_crossing();
        ctx.charge(persist);
        ctx.stats.record_kernel_crossings(1);
        ctx.stats.record_copy(len);
        self.store.insert(path, data, self.capacity)?;
        Ok(WriteBreakdown {
            metadata,
            transmit: SimDuration::ZERO,
            persist,
        })
    }

    fn read_file(&self, path: &str) -> StorageResult<(Vec<u8>, ReadBreakdown)> {
        let data = self.store.get(path)?;
        let len = data.len() as u64;
        let ctx = &self.ctx;
        let metadata = ctx.model.ext4_metadata_op() + ctx.model.kernel_crossing();
        let media = ctx.model.dax_read(len) + ctx.model.kernel_crossing();
        ctx.charge(metadata + media);
        ctx.stats.record_kernel_crossings(2);
        ctx.stats.record_copy(len);
        Ok((
            data,
            ReadBreakdown {
                metadata,
                transmit: SimDuration::ZERO,
                media,
            },
        ))
    }

    fn delete(&self, path: &str) -> bool {
        self.store.remove(path)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        self.store.size(path)
    }

    fn supports_gds(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvme_write_read_round_trips() {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Nvme::new(ctx.clone(), 1 << 30);
        let b = fs.write_file("a.ckpt", vec![7u8; 1 << 20]).unwrap();
        assert!(b.persist > SimDuration::ZERO);
        assert_eq!(b.transmit, SimDuration::ZERO);
        let (data, rb) = fs.read_file("a.ckpt").unwrap();
        assert_eq!(data, vec![7u8; 1 << 20]);
        assert!(rb.media > SimDuration::ZERO);
        assert_eq!(fs.file_size("a.ckpt"), Some(1 << 20));
    }

    #[test]
    fn nvme_effective_write_rate_is_about_1gbps() {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Nvme::new(ctx, 8 << 30);
        let len = 1u64 << 30;
        let b = fs.write_file("big", vec![0u8; len as usize]).unwrap();
        let eff = len as f64 / b.persist.as_secs_f64();
        assert!((0.8e9..1.3e9).contains(&eff), "effective {eff:.3e} B/s");
    }

    #[test]
    fn dax_writes_are_faster_than_nvme() {
        let ctx = SimContext::icdcs24();
        let nvme = Ext4Nvme::new(ctx.clone(), 1 << 30);
        let dax = Ext4Dax::new(ctx, 1 << 30);
        let n = nvme.write_file("f", vec![0u8; 64 << 20]).unwrap();
        let d = dax.write_file("f", vec![0u8; 64 << 20]).unwrap();
        assert!(d.persist < n.persist);
    }

    #[test]
    fn capacity_is_enforced() {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Nvme::new(ctx, 1024);
        assert!(matches!(
            fs.write_file("too-big", vec![0; 2048]),
            Err(StorageError::NoSpace { .. })
        ));
        // Overwrite accounting: replacing a file frees its old bytes.
        fs.write_file("f", vec![0; 1000]).unwrap();
        fs.write_file("f", vec![0; 1024]).unwrap();
    }

    #[test]
    fn missing_file_errors_and_delete_works() {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Dax::new(ctx, 1 << 20);
        assert!(matches!(
            fs.read_file("nope"),
            Err(StorageError::NotFound(_))
        ));
        fs.write_file("f", vec![1, 2, 3]).unwrap();
        assert!(fs.delete("f"));
        assert!(!fs.delete("f"));
    }

    #[test]
    fn kernel_crossings_are_counted() {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Nvme::new(ctx.clone(), 1 << 20);
        let before = ctx.stats.snapshot();
        fs.write_file("f", vec![0; 4096]).unwrap();
        let delta = ctx.stats.snapshot().since(&before);
        assert_eq!(delta.kernel_crossings, 3); // open + write + fsync
    }
}
