//! The baseline checkpoint/restore flows (`torch.save` / `torch.load`).
//!
//! Checkpoint (Fig. 3): ① `cudaMemcpy` every tensor from GPU to host
//! staging; ② serialize tensors + metadata headers into a container;
//! ③ write the container through a [`FileBackend`] (local ext4, or
//! BeeGFS with its RPC transmission + server DAX write). Restore runs
//! the inverse path, optionally with GPUDirect Storage, which skips the
//! host staging copy but still pays deserialization (§V-C2).

use std::sync::Arc;

use portus_dnn::ModelInstance;
use portus_format::{
    charge_deserialize, charge_serialize, read_checkpoint, write_checkpoint, CheckpointEntry,
    PayloadSource,
};
use portus_mem::{GpuDevice, HostMemory};
use portus_sim::{SimContext, SimDuration};

use crate::{FileBackend, StorageError, StorageResult};

/// Per-phase timing of one baseline checkpoint operation (the buckets
/// of Table I and Fig. 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointBreakdown {
    /// GPU → host `cudaMemcpy` (Table I: 15.5 %).
    pub gpu_copy: SimDuration,
    /// Serialization into the container (Table I: 41.7 %).
    pub serialize: SimDuration,
    /// File-system metadata operations.
    pub metadata: SimDuration,
    /// Network transmission (Table I: 30.0 % for BeeGFS; zero locally).
    pub transmit: SimDuration,
    /// Media persistence (Table I: 12.8 % DAX write; block path for
    /// ext4-NVMe).
    pub persist: SimDuration,
}

impl CheckpointBreakdown {
    /// Total checkpoint time.
    pub fn total(&self) -> SimDuration {
        self.gpu_copy + self.serialize + self.metadata + self.transmit + self.persist
    }
}

/// Per-phase timing of one baseline restore operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreBreakdown {
    /// Reading the container off storage (incl. transmission).
    pub read: SimDuration,
    /// Deserialization.
    pub deserialize: SimDuration,
    /// Moving payloads into GPU memory (PCIe H2D, or GDS DMA).
    pub transfer: SimDuration,
}

impl RestoreBreakdown {
    /// Total restore time.
    pub fn total(&self) -> SimDuration {
        self.read + self.deserialize + self.transfer
    }
}

/// The `torch.save`/`torch.load` stand-in over any [`FileBackend`].
#[derive(Debug)]
pub struct TorchCheckpointer<'a, B: FileBackend + ?Sized> {
    ctx: SimContext,
    backend: &'a B,
    gpu: Arc<GpuDevice>,
    host: Arc<HostMemory>,
}

impl<'a, B: FileBackend + ?Sized> TorchCheckpointer<'a, B> {
    /// Creates a checkpointer moving data between `gpu` and `backend`
    /// through `host` staging memory.
    pub fn new(
        ctx: SimContext,
        backend: &'a B,
        gpu: Arc<GpuDevice>,
        host: Arc<HostMemory>,
    ) -> Self {
        TorchCheckpointer {
            ctx,
            backend,
            gpu,
            host,
        }
    }

    /// `torch.save(model, path)`: snapshot, serialize, write.
    ///
    /// # Errors
    ///
    /// Staging allocation failures, container errors, and backend
    /// failures.
    pub fn checkpoint(
        &self,
        model: &ModelInstance,
        path: &str,
    ) -> StorageResult<CheckpointBreakdown> {
        let ctx = &self.ctx;

        // Phase 1: cudaMemcpy D2H into host staging.
        let t0 = ctx.clock.now();
        let mut staged = Vec::with_capacity(model.tensors().len());
        for t in model.tensors() {
            let host_buf = self.host.alloc(t.buffer.len())?;
            self.gpu
                .memcpy_d2h(&t.buffer, 0, &host_buf, 0, t.buffer.len())?;
            staged.push((t.meta.clone(), host_buf));
        }
        let gpu_copy = ctx.clock.now().saturating_since(t0);

        // Phase 2: serialize (metadata headers + payload packing).
        let payload: u64 = staged.iter().map(|(_, b)| b.len()).sum();
        let serialize = charge_serialize(ctx, payload);
        let entries: Vec<CheckpointEntry> = staged
            .iter()
            .map(|(meta, buf)| CheckpointEntry {
                meta: meta.clone(),
                data: PayloadSource::Buffer(Arc::clone(buf)),
            })
            .collect();
        let mut file = Vec::with_capacity(payload as usize + 4096);
        write_checkpoint(&mut file, &model.spec().name, &entries)?;

        // Staging memory is released once the container is built.
        for (_, buf) in &staged {
            self.host.free(buf);
        }
        drop(staged);

        // Phase 3: hand the container to the file system.
        let wb = self.backend.write_file(path, file)?;
        Ok(CheckpointBreakdown {
            gpu_copy,
            serialize,
            metadata: wb.metadata,
            transmit: wb.transmit,
            persist: wb.persist,
        })
    }

    /// `torch.load(path)` into an already-materialized (owned) model:
    /// read, deserialize, move payloads to the GPU. With `use_gds` (and
    /// a backend that supports it) the payloads DMA straight to GPU
    /// memory, skipping host staging — how the paper's baselines restore
    /// (§V-C2).
    ///
    /// # Errors
    ///
    /// Backend/container failures, and
    /// [`StorageError::ModelMismatch`] when the file does not match the
    /// target model's structure.
    pub fn restore(
        &self,
        model: &ModelInstance,
        path: &str,
        use_gds: bool,
    ) -> StorageResult<RestoreBreakdown> {
        let ctx = &self.ctx;
        let (bytes, rb) = self.backend.read_file(path)?;
        let read = rb.total();

        let file = read_checkpoint(&bytes[..])?;
        let payload = file.payload_bytes();
        let deserialize = charge_deserialize(ctx, payload);

        if file.tensors.len() != model.tensors().len() {
            return Err(StorageError::ModelMismatch(format!(
                "checkpoint has {} tensors, model expects {}",
                file.tensors.len(),
                model.tensors().len()
            )));
        }

        let t0 = ctx.clock.now();
        let gds = use_gds && self.backend.supports_gds();
        for ((meta, data), target) in file.tensors.iter().zip(model.tensors()) {
            if meta.name != target.meta.name || meta.size_bytes() != target.meta.size_bytes() {
                return Err(StorageError::ModelMismatch(format!(
                    "tensor {} does not match target {}",
                    meta.name, target.meta.name
                )));
            }
            if gds {
                // GDS: storage → GPU DMA, no host staging copy.
                target.buffer.write_at(0, data)?;
                let d = ctx.model.gds_transfer(data.len() as u64);
                ctx.charge(d);
                ctx.stats.record_copy(data.len() as u64);
            } else {
                let host_buf = self.host.alloc(data.len() as u64)?;
                host_buf.write_at(0, data)?;
                self.gpu
                    .memcpy_h2d(&host_buf, 0, &target.buffer, 0, data.len() as u64)?;
                self.host.free(&host_buf);
            }
        }
        let transfer = ctx.clock.now().saturating_since(t0);
        Ok(RestoreBreakdown {
            read,
            deserialize,
            transfer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ext4Nvme;
    use portus_dnn::{test_spec, Materialization, ModelInstance};

    fn setup() -> (SimContext, Arc<GpuDevice>, Arc<HostMemory>) {
        let ctx = SimContext::icdcs24();
        let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
        let host = HostMemory::new(ctx.clone(), 2 << 30);
        (ctx, gpu, host)
    }

    #[test]
    fn checkpoint_then_restore_reproduces_the_model() {
        let (ctx, gpu, host) = setup();
        let fs = Ext4Nvme::new(ctx.clone(), 1 << 30);
        let ckpt = TorchCheckpointer::new(ctx.clone(), &fs, gpu.clone(), host.clone());

        let spec = test_spec("toy", 8, 64 * 1024);
        let mut model =
            ModelInstance::materialize(&spec, &gpu, 42, Materialization::Owned).unwrap();
        model.train_step();
        let want = model.model_checksum();

        let bd = ckpt.checkpoint(&model, "toy.ckpt").unwrap();
        assert!(bd.gpu_copy > SimDuration::ZERO);
        assert!(bd.serialize > SimDuration::ZERO);
        assert!(bd.persist > SimDuration::ZERO);

        // Wreck the live model, then restore into it.
        model.train_step();
        assert_ne!(model.model_checksum(), want);
        let rb = ckpt.restore(&model, "toy.ckpt", false).unwrap();
        assert_eq!(model.model_checksum(), want);
        assert!(rb.transfer > SimDuration::ZERO);
        assert_eq!(host.allocated(), 0, "staging must be freed");
    }

    #[test]
    fn gds_restore_skips_host_staging() {
        let (ctx, gpu, host) = setup();
        let fs = Ext4Nvme::new(ctx.clone(), 1 << 30);
        let ckpt = TorchCheckpointer::new(ctx.clone(), &fs, gpu.clone(), host.clone());
        let spec = test_spec("toy", 4, 256 * 1024);
        let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        ckpt.checkpoint(&model, "t.ckpt").unwrap();

        let before = ctx.stats.snapshot();
        let with_gds = ckpt.restore(&model, "t.ckpt", true).unwrap();
        let copies_gds = ctx.stats.snapshot().since(&before).data_copies;
        let without_gds = ckpt.restore(&model, "t.ckpt", false).unwrap();
        assert!(
            with_gds.transfer < without_gds.transfer,
            "GDS transfer must beat staged H2D"
        );
        assert!(copies_gds > 0);
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let (ctx, gpu, host) = setup();
        let fs = Ext4Nvme::new(ctx.clone(), 1 << 30);
        let ckpt = TorchCheckpointer::new(ctx.clone(), &fs, gpu.clone(), host.clone());
        let model =
            ModelInstance::materialize(&test_spec("a", 2, 1024), &gpu, 1, Materialization::Owned)
                .unwrap();
        ckpt.checkpoint(&model, "a.ckpt").unwrap();
        let other =
            ModelInstance::materialize(&test_spec("b", 3, 1024), &gpu, 1, Materialization::Owned)
                .unwrap();
        assert!(matches!(
            ckpt.restore(&other, "a.ckpt", false),
            Err(StorageError::ModelMismatch(_))
        ));
    }

    #[test]
    fn serialization_dominates_the_local_breakdown() {
        // Table I has serialization at 41.7% vs cuMemcpy at 15.5%: the
        // serializer must cost ~2.7x the D2H copy.
        let (ctx, gpu, host) = setup();
        let fs = Ext4Nvme::new(ctx.clone(), 1 << 30);
        let ckpt = TorchCheckpointer::new(ctx.clone(), &fs, gpu.clone(), host);
        let spec = test_spec("m", 16, 4 << 20); // 64 MiB
        let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let bd = ckpt.checkpoint(&model, "m.ckpt").unwrap();
        let ratio = bd.serialize.as_secs_f64() / bd.gpu_copy.as_secs_f64();
        assert!((2.2..3.2).contains(&ratio), "serialize/cuMemcpy = {ratio}");
    }
}
