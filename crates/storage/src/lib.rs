//! # portus-storage
//!
//! The baseline storage datapaths Portus is evaluated against:
//!
//! * [`Ext4Nvme`] — local ext4 on an NVMe SSD (buffered writes, block
//!   layer, O_DIRECT + GPUDirect Storage reads);
//! * [`Ext4Dax`] — ext4-DAX directly on PMem (what the BeeGFS daemon
//!   stacks on);
//! * [`Beegfs`] — a distributed file system whose client ships files to
//!   the storage daemon over two-sided RPC-RDMA, reproducing the
//!   three-copy / three-kernel-crossing datapath of Fig. 3;
//! * [`TorchCheckpointer`] — the `torch.save`/`torch.load` flow over any
//!   of them, reporting the per-phase breakdown of Table I / Fig. 13.
//!
//! # Examples
//!
//! ```
//! use portus_dnn::{test_spec, Materialization, ModelInstance};
//! use portus_mem::{GpuDevice, HostMemory};
//! use portus_sim::SimContext;
//! use portus_storage::{Ext4Nvme, TorchCheckpointer};
//!
//! let ctx = SimContext::icdcs24();
//! let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
//! let host = HostMemory::new(ctx.clone(), 1 << 30);
//! let fs = Ext4Nvme::new(ctx.clone(), 1 << 30);
//! let saver = TorchCheckpointer::new(ctx, &fs, gpu.clone(), host);
//!
//! let spec = test_spec("toy", 4, 4096);
//! let model = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned)?;
//! let breakdown = saver.checkpoint(&model, "toy.ckpt")?;
//! assert!(breakdown.serialize > breakdown.gpu_copy); // Table I's shape
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod beegfs;
mod checkpointer;
mod error;
mod local;

pub use backend::{FileBackend, ReadBreakdown, WriteBreakdown};
pub use beegfs::Beegfs;
pub use checkpointer::{CheckpointBreakdown, RestoreBreakdown, TorchCheckpointer};
pub use error::{StorageError, StorageResult};
pub use local::{Ext4Dax, Ext4Nvme};
