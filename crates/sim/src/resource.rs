//! Bandwidth-serialized shared resources.
//!
//! A NIC, a PCIe link, or a PMem controller can only carry one bulk
//! transfer at a time at full rate. [`Resource`] models this as a FIFO
//! pipe: a job submitted at time `t` with service duration `d` starts at
//! `max(t, busy_until)` and completes `d` later. Concurrent checkpoint
//! shards contending for one storage-node NIC therefore serialize, which
//! is what produces the multi-shard scaling behaviour of §V-E.
//!
//! A resource can also model `k` identical engines behind one queue
//! ([`Resource::with_capacity`]) — a striped NIC's DMA engines or a
//! daemon's dispatch workers. A job takes the earliest-free engine, so
//! up to `k` jobs run in parallel and the `k+1`-th waits; with `k = 1`
//! this degenerates to the classic FIFO pipe, bit-for-bit.
//!
//! Grants compose with the discrete-event [`crate::Engine`]: schedule a
//! job at an actor's local instant, then plan the completion event at
//! [`Grant::end`]. Overlapping jobs on *independent* resources finish at
//! the max of their completions; contending jobs on one resource
//! serialize — never the sum-of-durations a shared additive clock
//! would charge.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{SimDuration, SimTime};

#[derive(Debug)]
struct ResourceState {
    /// Per-engine instants at which each engine frees up.
    engines: Vec<SimTime>,
    /// Total service time ever granted.
    busy_time: SimDuration,
}

/// A FIFO, bandwidth-serialized resource on the virtual timeline.
///
/// Cloning shares the underlying queue state.
///
/// # Examples
///
/// ```
/// use portus_sim::{Resource, SimDuration, SimTime};
///
/// let nic = Resource::new("nic0");
/// let a = nic.schedule(SimTime::ZERO, SimDuration::from_millis(10));
/// let b = nic.schedule(SimTime::ZERO, SimDuration::from_millis(10));
/// assert_eq!(a.end.as_nanos(), 10_000_000);
/// assert_eq!(b.start, a.end); // second job waits for the first
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: Arc<str>,
    state: Arc<Mutex<ResourceState>>,
}

/// The scheduled window a job received on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the job actually started (>= submission time).
    pub start: SimTime,
    /// When the job completes.
    pub end: SimTime,
}

impl Grant {
    /// Total latency experienced by a submitter at `submitted`: queueing
    /// delay plus service time.
    pub fn latency_from(&self, submitted: SimTime) -> SimDuration {
        self.end.saturating_since(submitted)
    }
}

impl Resource {
    /// Creates an idle single-engine resource with a diagnostic `name`.
    pub fn new(name: &str) -> Self {
        Resource::with_capacity(name, 1)
    }

    /// Creates an idle resource with `engines` identical service
    /// engines behind one queue (clamped to at least one).
    pub fn with_capacity(name: &str, engines: usize) -> Self {
        Resource {
            name: name.into(),
            state: Arc::new(Mutex::new(ResourceState {
                engines: vec![SimTime::ZERO; engines.max(1)],
                busy_time: SimDuration::ZERO,
            })),
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of service engines.
    pub fn capacity(&self) -> usize {
        self.state.lock().engines.len()
    }

    /// Schedules a job arriving at `now` needing `service` time; returns
    /// the FIFO grant. The job takes the earliest-free engine (lowest
    /// index on ties, so scheduling is deterministic).
    pub fn schedule(&self, now: SimTime, service: SimDuration) -> Grant {
        let mut st = self.state.lock();
        let (idx, _) = st
            .engines
            .iter()
            .enumerate()
            .min_by_key(|&(i, &free_at)| (free_at, i))
            .expect("a resource always has at least one engine");
        let start = st.engines[idx].max(now);
        let end = start + service;
        st.engines[idx] = end;
        st.busy_time += service;
        Grant { start, end }
    }

    /// The instant the resource fully drains (every engine idle) given
    /// work queued so far.
    pub fn busy_until(&self) -> SimTime {
        let st = self.state.lock();
        st.engines
            .iter()
            .copied()
            .max()
            .expect("a resource always has at least one engine")
    }

    /// The instant the next engine frees up (equals [`Resource::busy_until`]
    /// for single-engine resources).
    pub fn next_free(&self) -> SimTime {
        let st = self.state.lock();
        st.engines
            .iter()
            .copied()
            .min()
            .expect("a resource always has at least one engine")
    }

    /// Total service time ever granted (for utilization accounting).
    pub fn total_busy_time(&self) -> SimDuration {
        self.state.lock().busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let r = Resource::new("link");
        let g1 = r.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        let g2 = r.schedule(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start, g1.end);
        assert_eq!(g2.end.as_secs_f64(), 3.0);
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let r = Resource::new("link");
        let later = SimTime::ZERO + SimDuration::from_secs(10);
        let g = r.schedule(later, SimDuration::from_secs(1));
        assert_eq!(g.start, later);
        assert_eq!(g.latency_from(later), SimDuration::from_secs(1));
    }

    #[test]
    fn busy_time_accumulates() {
        let r = Resource::new("link");
        r.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        r.schedule(SimTime::ZERO, SimDuration::from_secs(3));
        assert_eq!(r.total_busy_time(), SimDuration::from_secs(4));
    }

    #[test]
    fn clones_share_queue() {
        let a = Resource::new("link");
        let b = a.clone();
        a.schedule(SimTime::ZERO, SimDuration::from_secs(5));
        let g = b.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(g.start.as_secs_f64(), 5.0);
    }

    #[test]
    fn multi_engine_resources_run_k_jobs_in_parallel() {
        let r = Resource::with_capacity("nic", 2);
        assert_eq!(r.capacity(), 2);
        let g1 = r.schedule(SimTime::ZERO, SimDuration::from_secs(4));
        let g2 = r.schedule(SimTime::ZERO, SimDuration::from_secs(4));
        let g3 = r.schedule(SimTime::ZERO, SimDuration::from_secs(4));
        // Two engines: first two jobs overlap, the third queues.
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start, SimTime::ZERO);
        assert_eq!(g3.start, g1.end);
        assert_eq!(r.next_free(), g2.end);
        assert_eq!(r.busy_until(), g3.end);
        assert_eq!(r.total_busy_time(), SimDuration::from_secs(12));
    }

    #[test]
    fn zero_capacity_clamps_to_one_engine() {
        let r = Resource::with_capacity("link", 0);
        assert_eq!(r.capacity(), 1);
        let g = r.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(g.end.as_secs_f64(), 1.0);
    }

    #[test]
    fn jobs_pick_the_earliest_free_engine() {
        let r = Resource::with_capacity("nic", 2);
        r.schedule(SimTime::ZERO, SimDuration::from_secs(10)); // engine 0 busy till 10
        r.schedule(SimTime::ZERO, SimDuration::from_secs(1)); // engine 1 busy till 1
        let g = r.schedule(
            SimTime::ZERO + SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        // Engine 1 freed at 1 < arrival 2: start immediately.
        assert_eq!(g.start.as_secs_f64(), 2.0);
        assert_eq!(g.end.as_secs_f64(), 3.0);
    }
}
