//! Bandwidth-serialized shared resources.
//!
//! A NIC, a PCIe link, or a PMem controller can only carry one bulk
//! transfer at a time at full rate. [`Resource`] models this as a FIFO
//! pipe: a job submitted at time `t` with service duration `d` starts at
//! `max(t, busy_until)` and completes `d` later. Concurrent checkpoint
//! shards contending for one storage-node NIC therefore serialize, which
//! is what produces the multi-shard scaling behaviour of §V-E.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{SimDuration, SimTime};

/// A FIFO, bandwidth-serialized resource on the virtual timeline.
///
/// Cloning shares the underlying queue state.
///
/// # Examples
///
/// ```
/// use portus_sim::{Resource, SimDuration, SimTime};
///
/// let nic = Resource::new("nic0");
/// let a = nic.schedule(SimTime::ZERO, SimDuration::from_millis(10));
/// let b = nic.schedule(SimTime::ZERO, SimDuration::from_millis(10));
/// assert_eq!(a.end.as_nanos(), 10_000_000);
/// assert_eq!(b.start, a.end); // second job waits for the first
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: Arc<str>,
    busy_until: Arc<Mutex<SimTime>>,
    busy_time: Arc<Mutex<SimDuration>>,
}

/// The scheduled window a job received on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the job actually started (>= submission time).
    pub start: SimTime,
    /// When the job completes.
    pub end: SimTime,
}

impl Grant {
    /// Total latency experienced by a submitter at `submitted`: queueing
    /// delay plus service time.
    pub fn latency_from(&self, submitted: SimTime) -> SimDuration {
        self.end.saturating_since(submitted)
    }
}

impl Resource {
    /// Creates an idle resource with a diagnostic `name`.
    pub fn new(name: &str) -> Self {
        Resource {
            name: name.into(),
            busy_until: Arc::new(Mutex::new(SimTime::ZERO)),
            busy_time: Arc::new(Mutex::new(SimDuration::ZERO)),
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schedules a job arriving at `now` needing `service` time; returns
    /// the FIFO grant.
    pub fn schedule(&self, now: SimTime, service: SimDuration) -> Grant {
        let mut busy = self.busy_until.lock();
        let start = busy.max(now);
        let end = start + service;
        *busy = end;
        *self.busy_time.lock() += service;
        Grant { start, end }
    }

    /// The instant the resource becomes idle given work queued so far.
    pub fn busy_until(&self) -> SimTime {
        *self.busy_until.lock()
    }

    /// Total service time ever granted (for utilization accounting).
    pub fn total_busy_time(&self) -> SimDuration {
        *self.busy_time.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let r = Resource::new("link");
        let g1 = r.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        let g2 = r.schedule(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start, g1.end);
        assert_eq!(g2.end.as_secs_f64(), 3.0);
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let r = Resource::new("link");
        let later = SimTime::ZERO + SimDuration::from_secs(10);
        let g = r.schedule(later, SimDuration::from_secs(1));
        assert_eq!(g.start, later);
        assert_eq!(g.latency_from(later), SimDuration::from_secs(1));
    }

    #[test]
    fn busy_time_accumulates() {
        let r = Resource::new("link");
        r.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        r.schedule(SimTime::ZERO, SimDuration::from_secs(3));
        assert_eq!(r.total_busy_time(), SimDuration::from_secs(4));
    }

    #[test]
    fn clones_share_queue() {
        let a = Resource::new("link");
        let b = a.clone();
        a.schedule(SimTime::ZERO, SimDuration::from_secs(5));
        let g = b.schedule(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(g.start.as_secs_f64(), 5.0);
    }
}
