//! Virtual time primitives.
//!
//! All timing in the reproduction is *virtual*: devices charge durations
//! derived from the calibrated [`crate::CostModel`] instead of from the host
//! wall clock. `SimTime` is an absolute instant on the virtual timeline and
//! `SimDuration` is a span between two instants. Both are nanosecond
//! resolution `u64` newtypes so that arithmetic mistakes between instants
//! and spans are compile errors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the virtual timeline, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use portus_sim::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(5);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(5_000));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use portus_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (lossy for very large values).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that stops at zero instead of wrapping.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(
            (t + SimDuration::from_secs(2)) - t,
            SimDuration::from_secs(2)
        );
        assert_eq!(
            t.saturating_since(t + SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d * 0.5, SimDuration::from_millis(5));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
