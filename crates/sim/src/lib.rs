//! # portus-sim
//!
//! Virtual-time foundation for the Portus reproduction: a shared
//! monotonic [`Clock`], the calibrated [`CostModel`] standing in for the
//! paper's testbed hardware, FIFO [`Resource`]s for contended links, the
//! datapath [`Stats`] counters behind the zero-copy assertions, and the
//! discrete-event core — a deterministic [`PlanQueue`] of events at
//! absolute virtual instants driven by the [`Engine`], with per-actor
//! local time, seeded randomness ([`SimRng`]), and periodic progress
//! reports — for end-to-end training timelines and multi-daemon fleet
//! runs where overlapping operations must finish at the *max*, not the
//! sum, of their durations.
//!
//! Everything timing-related in the workspace flows through a
//! [`SimContext`], which bundles a clock, a cost model, and counters.
//!
//! # Examples
//!
//! ```
//! use portus_sim::{MemoryKind, SimContext};
//!
//! let ctx = SimContext::icdcs24();
//! let d = ctx.model.rdma_read(1 << 20, MemoryKind::GpuHbm);
//! ctx.clock.advance_by(d);
//! assert!(ctx.clock.now().as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cost;
mod engine;
mod metrics;
mod plan;
mod resource;
mod rng;
mod stats;
mod time;
mod trace;

pub use clock::{Clock, ClockOverflow};
pub use cost::{CostModel, MemoryKind};
pub use engine::{ActorId, Engine, ProgressReport};
pub use metrics::{
    DaemonFleetStats, HistogramSnapshot, Metrics, MetricsSnapshot, StageHistogram, TenantSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use plan::{PlanId, PlanQueue};
pub use resource::{Grant, Resource};
pub use rng::SimRng;
pub use stats::{Stats, StatsSnapshot};
pub use time::{SimDuration, SimTime};
pub use trace::{chrome_trace_json, SpanRecord, Stage, TraceEvent, TraceOp, Tracer};

/// Shared simulation context: one virtual timeline, one calibrated cost
/// model, one set of datapath counters, one span recorder, and one
/// metrics registry.
///
/// Cloning shares the clock, counters, tracer, and metrics (the model
/// is copied; it is immutable in practice).
#[derive(Debug, Clone, Default)]
pub struct SimContext {
    /// The shared virtual clock.
    pub clock: Clock,
    /// The calibrated device cost model.
    pub model: CostModel,
    /// Shared datapath counters.
    pub stats: Stats,
    /// Shared per-request span recorder (disabled until
    /// [`Tracer::enable`]).
    pub tracer: Tracer,
    /// Shared stage-latency histograms and queue gauges.
    pub metrics: Metrics,
}

impl SimContext {
    /// A context using the profile calibrated against the paper.
    pub fn icdcs24() -> Self {
        SimContext {
            clock: Clock::new(),
            model: CostModel::icdcs24(),
            stats: Stats::new(),
            tracer: Tracer::new(),
            metrics: Metrics::new(),
        }
    }

    /// A context with a custom cost model (for sensitivity studies).
    pub fn with_model(model: CostModel) -> Self {
        SimContext {
            clock: Clock::new(),
            model,
            stats: Stats::new(),
            tracer: Tracer::new(),
            metrics: Metrics::new(),
        }
    }

    /// Charges `d` of virtual time on the shared clock and returns the
    /// new instant.
    pub fn charge(&self, d: SimDuration) -> SimTime {
        self.clock.advance_by(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_clones_share_clock_and_stats() {
        let a = SimContext::icdcs24();
        let b = a.clone();
        a.charge(SimDuration::from_secs(1));
        b.stats.record_copy(8);
        assert_eq!(b.clock.now().as_secs_f64(), 1.0);
        assert_eq!(a.stats.snapshot().data_copies, 1);
    }
}
