//! Seeded, fork-able randomness for deterministic simulations.
//!
//! Every random decision in an event-queue run must flow from the
//! run's seed so two runs with the same seed replay bit-for-bit.
//! [`SimRng`] is a small splitmix64 stream (the same finalizer the
//! fault-injection plane uses): cheap, dependency-free, and good
//! enough for jittering arrival times and breaking behavioural ties —
//! it is *not* cryptographic.
//!
//! Independent actors should each get their own stream via
//! [`SimRng::fork`], keyed by a stable label, so adding a draw to one
//! actor never perturbs another actor's sequence.

/// splitmix64 — the standard 64-bit finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic seeded random stream.
///
/// # Examples
///
/// ```
/// use portus_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    /// The stream's identity — never mutated by draws, so forking is a
    /// pure function of the seed lineage.
    seed: u64,
    /// The stream position (number of draws made).
    counter: u64,
}

impl SimRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng { seed, counter: 0 }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(
            self.seed
                .wrapping_add(self.counter.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        )
    }

    /// A draw uniform in `[0, n)`. Returns 0 when `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift reduction; bias is negligible for sim uses.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A draw uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An independent child stream keyed by `label`: the child's
    /// sequence depends only on this stream's seed lineage and the
    /// label, never on how many draws the parent has made.
    pub fn fork(&self, label: u64) -> SimRng {
        SimRng {
            seed: splitmix64(self.seed ^ splitmix64(label ^ 0xa076_1d64_78bd_642f)),
            counter: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_independent_of_parent_draws() {
        let mut parent = SimRng::new(99);
        let fork_before = parent.fork(5);
        parent.next_u64();
        parent.next_u64();
        let fork_after = parent.fork(5);
        assert_eq!(
            fork_before, fork_after,
            "forking must not consume parent draws"
        );
        assert_ne!(parent.fork(5), parent.fork(6));
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.gen_range(0), 0);
    }
}
