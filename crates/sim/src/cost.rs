//! Calibrated device cost model.
//!
//! Every hardware component of the paper's testbed (ICDCS'24, §V-A) is
//! replaced by an analytic cost model. The constants in
//! [`CostModel::icdcs24`] are **derived from the paper's own
//! measurements** so that the reproduced experiments match the *shape* of
//! the published results:
//!
//! * Table I — baseline checkpoint split 15.5 % cuMemcpy / 41.7 %
//!   serialization / 30.0 % RPC-RDMA / 12.8 % DAX write fixes the ratios
//!   between `pcie_d2h_bw`, `serialize_bw`, `rpc_rdma_bw` and
//!   `dax_write_bw`.
//! * §V-B — GPU BAR read cap of 5.8 GB/s, "30 % less than DRAM", fixes
//!   `gpu_bar_read_bw` and `rdma_peak_bw`.
//! * Fig. 10 — bandwidth saturates past 512 KB messages; fixes
//!   `rdma_ramp_bytes`.
//! * Fig. 13 — the local ext4 path spends 53.7 % of its time in the block
//!   layer; fixes the ext4/NVMe component bandwidths.
//! * §V-B — NVMe sequential write 2.7 GB/s.

use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// The kind of byte-addressable memory at one end of a transfer.
///
/// The RDMA datapath behaves differently per device: reads *from* GPU
/// memory are capped by the base-address-register (BAR) unit, which
/// disables prefetching (paper §V-B), while writes *to* GPU memory are
/// posted and run at line rate (Fig. 10d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Host DRAM on a compute or storage node.
    HostDram,
    /// GPU device memory (HBM) exposed over PCIe BAR windows.
    GpuHbm,
    /// Persistent memory (Optane DC PMem) on the storage node.
    Pmem,
}

/// Calibrated bandwidth/latency constants for every simulated device.
///
/// All bandwidths are in bytes per second, all latencies in nanoseconds.
/// Use [`CostModel::icdcs24`] for the profile calibrated against the
/// paper; construct your own for sensitivity studies.
///
/// # Examples
///
/// ```
/// use portus_sim::CostModel;
///
/// let m = CostModel::icdcs24();
/// // A 1 MiB one-sided RDMA read out of GPU memory is BAR-limited.
/// let d = m.rdma_read(1 << 20, portus_sim::MemoryKind::GpuHbm);
/// assert!(d.as_micros() > 150); // ~5.8 GB/s => ~180 us
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- network / RDMA ----
    /// Effective peak one-sided RDMA bandwidth for large messages
    /// (bytes/s). The paper measures ~8.3 GB/s to host DRAM over a
    /// 100 Gb/s ConnectX-5 (5.8 GB/s GPU read is "30 % less than DRAM").
    pub rdma_peak_bw: f64,
    /// Peak bandwidth when the RNIC reads GPU memory through the BAR
    /// (bytes/s). 5.8 GB/s per §V-B.
    pub gpu_bar_read_bw: f64,
    /// Message size at which effective bandwidth reaches half of peak
    /// (bytes). Produces the Fig. 10 saturation knee: ≥512 KB messages run
    /// near peak.
    pub rdma_ramp_bytes: f64,
    /// Per-verb base latency (ns): post + DMA engine start + completion.
    pub rdma_op_latency_ns: u64,
    /// Incremental latency (ns) of each *additional* verb posted in the
    /// same doorbell batch. The first verb of a batch pays the full
    /// [`rdma_op_latency_ns`]; follow-on verbs ride the same doorbell and
    /// DMA-engine wakeup, paying only the WQE fetch/processing cost
    /// (paper §III-D: the daemon "batches the RDMA read requests of
    /// tensors and issues them together").
    ///
    /// [`rdma_op_latency_ns`]: CostModel::rdma_op_latency_ns
    pub rdma_posted_verb_ns: u64,
    /// Effective bandwidth of the two-sided RPC-over-RDMA protocol used by
    /// the BeeGFS baseline (bytes/s). Derived from Table I (30.0 % share).
    pub rpc_rdma_bw: f64,
    /// Extra per-message latency of the two-sided protocol (rendezvous +
    /// receiver CPU involvement), ns.
    pub rpc_op_latency_ns: u64,
    /// Two-sided RPC throughput degradation per additional concurrent
    /// stream: with `n` shards writing at once the effective bandwidth
    /// is `rpc_rdma_bw / (1 + c·(n-1))`. The receiver CPU is on the
    /// critical path of two-sided protocols (Ibrahim et al.), which is
    /// exactly the contention one-sided Portus avoids; calibrated so
    /// the 16-shard GPT-22.4B `torch.save` lands above 120 s (Fig. 14).
    pub rpc_contention_per_stream: f64,
    /// One-way latency of the TCP-over-IPoIB control channel (ns).
    pub control_one_way_ns: u64,
    /// Base backoff (ns) charged before re-posting a failed verb; each
    /// further retry of the same operation doubles it (see
    /// [`CostModel::verb_retry_backoff`]).
    pub verb_retry_backoff_ns: u64,
    /// Scheduling penalty (ns) charged when a verb is posted to a NIC
    /// DMA engine that is still busy with earlier work: the WQE sits in
    /// the engine's queue and pays an extra arbitration/wakeup cost on
    /// top of the queueing delay itself. Only the striped (multi-QP)
    /// datapath posts to potentially-busy engines, so single-QP runs
    /// never observe this constant.
    #[serde(default)]
    pub nic_engine_contention_ns: u64,

    // ---- PCIe / GPU ----
    /// `cudaMemcpy` device-to-host effective bandwidth (bytes/s) through
    /// pageable host memory, as `torch.save` uses. Derived from Table I
    /// (15.5 % share).
    pub pcie_d2h_bw: f64,
    /// `cudaMemcpy` host-to-device effective bandwidth (bytes/s).
    pub pcie_h2d_bw: f64,
    /// GPUDirect Storage DMA bandwidth storage<->GPU (bytes/s).
    pub gds_bw: f64,
    /// Fixed cost of launching a DMA / memcpy (ns).
    pub pcie_op_latency_ns: u64,

    // ---- serialization (torch.save-style) ----
    /// Serializer throughput (bytes/s): Python-side pickling + header
    /// packing. Derived from Table I (41.7 % share).
    pub serialize_bw: f64,
    /// Deserializer throughput on restore (bytes/s). Somewhat faster than
    /// pickling; keeps the paper's observation that "deserialization
    /// overhead ... still makes restoring inefficient".
    pub deserialize_bw: f64,
    /// Fixed per-checkpoint serializer overhead (ns): container headers,
    /// metadata walk.
    pub serialize_fixed_ns: u64,

    // ---- persistent memory ----
    /// DAX write (ntstore + flush) bandwidth into interleaved Optane
    /// (bytes/s). Derived from Table I (12.8 % share).
    pub dax_write_bw: f64,
    /// DAX / PMem read bandwidth (bytes/s). Optane reads are ~3x writes.
    pub dax_read_bw: f64,
    /// Latency of a single cache-line flush (`clwb`), ns.
    pub clwb_ns: u64,
    /// Latency of a persistence fence (`sfence`), ns.
    pub sfence_ns: u64,

    // ---- DRAM ----
    /// Host memcpy bandwidth (bytes/s).
    pub dram_copy_bw: f64,

    // ---- NVMe / local file system ----
    /// NVMe sequential write bandwidth (bytes/s). 2.7 GB/s per §V-B.
    pub nvme_write_bw: f64,
    /// NVMe sequential read bandwidth (bytes/s). Reads on data-center
    /// NVMe are roughly 2x writes.
    pub nvme_read_bw: f64,
    /// User→page-cache copy bandwidth for buffered writes (bytes/s).
    pub page_cache_copy_bw: f64,
    /// Per-byte file-system overhead (journaling, extent allocation,
    /// writeback scheduling) expressed as a bandwidth (bytes/s).
    pub ext4_overhead_bw: f64,

    // ---- kernel and metadata ----
    /// Cost of one user/kernel crossing (syscall entry+exit), ns.
    pub kernel_crossing_ns: u64,
    /// Fixed metadata cost of creating/opening a file on the *local* ext4
    /// file system (path resolution, permission check, inode alloc), ns.
    pub ext4_metadata_ns: u64,
    /// Fixed metadata cost of creating/opening a file on the *distributed*
    /// BeeGFS file system (adds metadata-server round trips), ns. The
    /// paper attributes ResNet50's outsized 9.23x speedup to this
    /// overhead on small files (Fig. 11).
    pub beegfs_metadata_ns: u64,

    // ---- RDMA memory registration ----
    /// Fixed cost of registering one memory region (ns).
    pub mr_register_fixed_ns: u64,
    /// Per-byte cost of pinning + page-table setup during registration,
    /// expressed as a bandwidth (bytes/s).
    pub mr_register_bw: f64,
}

impl CostModel {
    /// The profile calibrated against the paper's measurements. See the
    /// module docs for which published number fixes which constant.
    pub fn icdcs24() -> Self {
        CostModel {
            rdma_peak_bw: 8.3e9,
            gpu_bar_read_bw: 5.8e9,
            rdma_ramp_bytes: 64.0 * 1024.0,
            rdma_op_latency_ns: 3_000,
            rdma_posted_verb_ns: 180,
            rpc_rdma_bw: 2.43e9,
            rpc_op_latency_ns: 12_000,
            rpc_contention_per_stream: 0.062,
            control_one_way_ns: 15_000,
            verb_retry_backoff_ns: 50_000,
            nic_engine_contention_ns: 2_000,

            pcie_d2h_bw: 4.71e9,
            pcie_h2d_bw: 5.0e9,
            gds_bw: 9.0e9,
            pcie_op_latency_ns: 8_000,

            serialize_bw: 1.75e9,
            deserialize_bw: 2.6e9,
            serialize_fixed_ns: 900_000,

            dax_write_bw: 5.70e9,
            dax_read_bw: 12.0e9,
            clwb_ns: 100,
            sfence_ns: 30,

            dram_copy_bw: 18.0e9,

            nvme_write_bw: 2.7e9,
            nvme_read_bw: 5.6e9,
            page_cache_copy_bw: 4.5e9,
            ext4_overhead_bw: 2.5e9,

            kernel_crossing_ns: 2_000,
            ext4_metadata_ns: 250_000,
            beegfs_metadata_ns: 40_000_000,

            mr_register_fixed_ns: 10_000,
            mr_register_bw: 15.0e9,
        }
    }

    /// Time to move `bytes` over a link with `peak_bw`, using the
    /// size-dependent ramp that models per-packet overheads: effective
    /// bandwidth is `peak * s / (s + ramp)`.
    fn link_time(&self, bytes: u64, peak_bw: f64, base_latency_ns: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::from_nanos(base_latency_ns);
        }
        let s = bytes as f64;
        let eff = peak_bw * s / (s + self.rdma_ramp_bytes);
        SimDuration::from_nanos(base_latency_ns) + SimDuration::from_secs_f64(s / eff)
    }

    /// Effective one-sided RDMA bandwidth (bytes/s) for a message of
    /// `bytes` whose *source* is `src` memory. Exposed so harnesses can
    /// plot Fig. 10 directly.
    pub fn rdma_effective_bw(&self, bytes: u64, src: MemoryKind) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.rdma_read(bytes, src)
            .as_secs_f64()
            .recip()
            .min(f64::INFINITY)
            * bytes as f64
    }

    /// Time for a one-sided RDMA READ of `bytes` whose source is `src`
    /// memory. Reading GPU memory is BAR-capped; other sources run at the
    /// RNIC effective peak.
    pub fn rdma_read(&self, bytes: u64, src: MemoryKind) -> SimDuration {
        let peak = match src {
            MemoryKind::GpuHbm => self.gpu_bar_read_bw,
            MemoryKind::HostDram | MemoryKind::Pmem => self.rdma_peak_bw,
        };
        self.link_time(bytes, peak, self.rdma_op_latency_ns)
    }

    /// Time for a one-sided RDMA WRITE of `bytes` into `dst` memory.
    /// Writes are posted and are not BAR-limited (Fig. 10d).
    pub fn rdma_write(&self, bytes: u64, _dst: MemoryKind) -> SimDuration {
        self.link_time(bytes, self.rdma_peak_bw, self.rdma_op_latency_ns)
    }

    /// Time for a one-sided RDMA READ of `bytes` posted as part of a
    /// doorbell batch. The first verb of a batch pays the full per-verb
    /// base latency; subsequent verbs pay only
    /// [`rdma_posted_verb_ns`](CostModel::rdma_posted_verb_ns), which is
    /// where the batched datapath's latency win comes from.
    pub fn rdma_read_posted(
        &self,
        bytes: u64,
        src: MemoryKind,
        first_in_batch: bool,
    ) -> SimDuration {
        let peak = match src {
            MemoryKind::GpuHbm => self.gpu_bar_read_bw,
            MemoryKind::HostDram | MemoryKind::Pmem => self.rdma_peak_bw,
        };
        let base = if first_in_batch {
            self.rdma_op_latency_ns
        } else {
            self.rdma_posted_verb_ns
        };
        self.link_time(bytes, peak, base)
    }

    /// Time for a one-sided RDMA WRITE of `bytes` posted as part of a
    /// doorbell batch (see [`rdma_read_posted`](CostModel::rdma_read_posted)).
    pub fn rdma_write_posted(
        &self,
        bytes: u64,
        _dst: MemoryKind,
        first_in_batch: bool,
    ) -> SimDuration {
        let base = if first_in_batch {
            self.rdma_op_latency_ns
        } else {
            self.rdma_posted_verb_ns
        };
        self.link_time(bytes, self.rdma_peak_bw, base)
    }

    /// Time for a two-sided RPC-over-RDMA transfer of `bytes` (the BeeGFS
    /// baseline protocol, which the paper notes is slower than one-sided
    /// verbs).
    pub fn rpc_rdma_transfer(&self, bytes: u64) -> SimDuration {
        self.link_time(bytes, self.rpc_rdma_bw, self.rpc_op_latency_ns)
    }

    /// Two-sided RPC transfer of `bytes` with `streams` concurrent
    /// shard streams contending for the receiver CPU.
    pub fn rpc_rdma_transfer_contended(&self, bytes: u64, streams: u32) -> SimDuration {
        let eff =
            self.rpc_rdma_bw / (1.0 + self.rpc_contention_per_stream * (streams.max(1) - 1) as f64);
        self.link_time(bytes, eff, self.rpc_op_latency_ns)
    }

    /// One-way latency of the TCP/IPoIB control channel carrying
    /// `payload` bytes.
    pub fn control_message(&self, payload: u64) -> SimDuration {
        // IPoIB runs over the same fabric; payloads are tiny, so charge a
        // conservative 1 GB/s stream rate on top of the base latency.
        SimDuration::from_nanos(self.control_one_way_ns)
            + SimDuration::from_secs_f64(payload as f64 / 1.0e9)
    }

    /// `cudaMemcpy` device-to-host of `bytes` (the snapshot copy of the
    /// baseline datapath, Fig. 3 step 1).
    pub fn cuda_memcpy_d2h(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.pcie_op_latency_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.pcie_d2h_bw)
    }

    /// `cudaMemcpy` host-to-device of `bytes` (baseline restore).
    pub fn cuda_memcpy_h2d(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.pcie_op_latency_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.pcie_h2d_bw)
    }

    /// GPUDirect Storage DMA of `bytes` between a storage device and GPU
    /// memory, bypassing host DRAM (used by baseline restore, §V-C2).
    pub fn gds_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.pcie_op_latency_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.gds_bw)
    }

    /// Serialization of `bytes` of tensor payload into a checkpoint
    /// container (Fig. 3 step 2).
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.serialize_fixed_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.serialize_bw)
    }

    /// Deserialization of `bytes` on the restore path.
    pub fn deserialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.serialize_fixed_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.deserialize_bw)
    }

    /// DAX write of `bytes` into PMem (ntstore + flush).
    pub fn dax_write(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.dax_write_bw)
    }

    /// DAX read of `bytes` from PMem.
    pub fn dax_read(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.dax_read_bw)
    }

    /// Host-DRAM memcpy of `bytes`.
    pub fn dram_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.dram_copy_bw)
    }

    /// Buffered ext4 write of `bytes` to NVMe: user→page-cache copy, file
    /// system overhead (journal/extents), then device writeback. These
    /// three components reproduce Fig. 13's observation that the block
    /// path is 53.7 % of the local checkpoint time.
    pub fn ext4_nvme_write(&self, bytes: u64) -> SimDuration {
        let s = bytes as f64;
        SimDuration::from_secs_f64(
            s / self.page_cache_copy_bw + s / self.ext4_overhead_bw + s / self.nvme_write_bw,
        )
    }

    /// O_DIRECT ext4 read of `bytes` from NVMe (restore path; page cache
    /// bypassed, modest FS overhead remains).
    pub fn ext4_nvme_read(&self, bytes: u64) -> SimDuration {
        let s = bytes as f64;
        SimDuration::from_secs_f64(s / self.nvme_read_bw + s / (self.ext4_overhead_bw * 4.0))
    }

    /// One user/kernel crossing.
    pub fn kernel_crossing(&self) -> SimDuration {
        SimDuration::from_nanos(self.kernel_crossing_ns)
    }

    /// Fixed metadata cost of a local ext4 file create/open.
    pub fn ext4_metadata_op(&self) -> SimDuration {
        SimDuration::from_nanos(self.ext4_metadata_ns)
    }

    /// Fixed metadata cost of a BeeGFS file create/open.
    pub fn beegfs_metadata_op(&self) -> SimDuration {
        SimDuration::from_nanos(self.beegfs_metadata_ns)
    }

    /// Registering `bytes` of memory as one RDMA memory region.
    pub fn mr_register(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.mr_register_fixed_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.mr_register_bw)
    }

    /// Flushing `lines` cache lines plus one fence.
    pub fn persist_lines(&self, lines: u64) -> SimDuration {
        SimDuration::from_nanos(self.clwb_ns * lines + self.sfence_ns)
    }

    /// Penalty paid by a verb that lands on a NIC DMA engine which is
    /// already busy at post time (see
    /// [`nic_engine_contention_ns`](CostModel::nic_engine_contention_ns)).
    pub fn nic_engine_contention(&self) -> SimDuration {
        SimDuration::from_nanos(self.nic_engine_contention_ns)
    }

    /// Backoff charged before the `attempt`-th re-post of a failed verb
    /// (1-based): exponential over
    /// [`verb_retry_backoff_ns`](CostModel::verb_retry_backoff_ns),
    /// capped at 2¹⁶ doublings so the virtual clock never overflows.
    pub fn verb_retry_backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        SimDuration::from_nanos(self.verb_retry_backoff_ns.saturating_mul(1 << exp))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::icdcs24()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    #[test]
    fn bar_caps_gpu_reads_but_not_writes() {
        let m = CostModel::icdcs24();
        let read_gpu = m.rdma_read(256 * MIB, MemoryKind::GpuHbm);
        let read_dram = m.rdma_read(256 * MIB, MemoryKind::HostDram);
        let write_gpu = m.rdma_write(256 * MIB, MemoryKind::GpuHbm);
        assert!(read_gpu > read_dram, "BAR cap must slow GPU reads");
        // Writes to GPU run at the NIC peak, same as DRAM reads.
        assert_eq!(write_gpu, read_dram);
    }

    #[test]
    fn fig10_knee_is_at_half_megabyte() {
        let m = CostModel::icdcs24();
        // Past 512 KB the effective bandwidth is within 15% of peak.
        let bw_512k = m.rdma_effective_bw(512 * 1024, MemoryKind::HostDram);
        assert!(
            bw_512k > 0.85 * m.rdma_peak_bw,
            "bw at 512KB: {bw_512k:.3e}"
        );
        // At 4 KB we are latency-bound, far from peak.
        let bw_4k = m.rdma_effective_bw(4 * 1024, MemoryKind::HostDram);
        assert!(bw_4k < 0.20 * m.rdma_peak_bw, "bw at 4KB: {bw_4k:.3e}");
    }

    #[test]
    fn table1_ratio_holds() {
        // Table I: cuMemcpy 15.5%, serialize 41.7%, RPC-RDMA 30.0%, DAX 12.8%
        // for a large transfer where fixed costs vanish.
        let m = CostModel::icdcs24();
        let bytes = 8 * 1024 * MIB; // 8 GiB: fixed costs negligible
        let gpu = m.cuda_memcpy_d2h(bytes).as_secs_f64();
        let ser = m.serialize(bytes).as_secs_f64();
        let rpc = m.rpc_rdma_transfer(bytes).as_secs_f64();
        let dax = m.dax_write(bytes).as_secs_f64();
        let total = gpu + ser + rpc + dax;
        let share = |x: f64| 100.0 * x / total;
        assert!((share(gpu) - 15.5).abs() < 2.0, "gpu share {}", share(gpu));
        assert!((share(ser) - 41.7).abs() < 2.0, "ser share {}", share(ser));
        assert!((share(rpc) - 30.0).abs() < 2.0, "rpc share {}", share(rpc));
        assert!((share(dax) - 12.8).abs() < 2.0, "dax share {}", share(dax));
    }

    #[test]
    fn nvme_write_matches_paper_rate() {
        let m = CostModel::icdcs24();
        // Device-only component is 2.7 GB/s; the full buffered path is
        // slower because of page-cache copy + FS overhead.
        let one_gib = 1024 * MIB;
        let t = m.ext4_nvme_write(one_gib).as_secs_f64();
        let eff = one_gib as f64 / t;
        assert!(eff < 2.7e9, "full path must be below raw device rate");
        assert!(
            eff > 0.8e9,
            "full path should stay near 1 GB/s, got {eff:.3e}"
        );
    }

    #[test]
    fn zero_byte_ops_cost_only_latency() {
        let m = CostModel::icdcs24();
        assert_eq!(
            m.rdma_read(0, MemoryKind::HostDram).as_nanos(),
            m.rdma_op_latency_ns
        );
        assert_eq!(m.dax_write(0), SimDuration::ZERO);
    }

    #[test]
    fn doorbell_batching_discounts_follow_on_verbs() {
        let m = CostModel::icdcs24();
        let first = m.rdma_read_posted(4096, MemoryKind::GpuHbm, true);
        let rest = m.rdma_read_posted(4096, MemoryKind::GpuHbm, false);
        assert_eq!(first, m.rdma_read(4096, MemoryKind::GpuHbm));
        assert!(rest < first, "batched verbs must be cheaper");
        let saved = first.saturating_sub(rest).as_nanos();
        assert_eq!(saved, m.rdma_op_latency_ns - m.rdma_posted_verb_ns);
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let m = CostModel::icdcs24();
        assert_eq!(m.verb_retry_backoff(1).as_nanos(), m.verb_retry_backoff_ns);
        assert_eq!(
            m.verb_retry_backoff(3).as_nanos(),
            m.verb_retry_backoff_ns * 4
        );
        // Deep retry counts saturate instead of overflowing.
        assert_eq!(m.verb_retry_backoff(100), m.verb_retry_backoff(17));
    }

    #[test]
    fn metadata_ordering_beegfs_heavier_than_ext4() {
        let m = CostModel::icdcs24();
        assert!(m.beegfs_metadata_op() > m.ext4_metadata_op() * 10);
    }
}
