//! Fixed-bucket latency histograms and gauges keyed to virtual time.
//!
//! Where [`crate::Tracer`] keeps every span for timeline export,
//! [`Metrics`] aggregates: each `(op, stage)` pair gets a 64-bucket
//! power-of-two histogram of stage durations, cheap enough to leave on
//! permanently. Quantiles (p50/p95/p99) are derived from the bucket
//! counts on demand — no floats are stored, so snapshots stay `Eq` and
//! replays of a deterministic run snapshot identically.
//!
//! The same registry carries the daemon's dispatch-queue gauges
//! (current depth, high-water mark, configured capacity), giving the
//! bounded dispatch pool observable backpressure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::trace::{Stage, TraceOp};
use crate::SimDuration;

/// Number of power-of-two buckets; bucket `i` counts durations `d`
/// with `floor(log2(d)) == i` (bucket 0 also takes `d == 0`).
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        (63 - nanos.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Lower bound (inclusive) of bucket `i`, in nanoseconds.
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

#[derive(Debug, Clone)]
struct Hist {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0u64; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(nanos);
        self.min_ns = self.min_ns.min(nanos);
        self.max_ns = self.max_ns.max(nanos);
        self.buckets[bucket_of(nanos)] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            total_ns: self.total_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            buckets: self.buckets.to_vec(),
        }
    }
}

/// An immutable view of one `(op, stage)` histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all sample durations, in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Power-of-two bucket counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`: the lower bound of
    /// the bucket holding the `ceil(q * count)`-th sample, clamped to
    /// the observed `[min, max]` range.
    ///
    /// Pinned boundary semantics:
    /// * empty histogram — always 0, for any `q`;
    /// * `q <= 0.0` (and NaN) — exactly `min_ns`;
    /// * `q >= 1.0` — exactly `max_ns`;
    /// * single sample — the sample itself, for any `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max_ns;
        }
        // NaN survives the clamp; pin it to the same floor as q <= 0.
        if q.is_nan() || q <= 0.0 {
            return self.min_ns;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-daemon fleet counters: replicated writes, fenced Active slots,
/// and rebalance repair traffic. Integer-only so snapshots stay `Eq`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonFleetStats {
    /// The daemon's index in the fleet.
    pub daemon: u64,
    /// Slot writes (primary + replica) this daemon served.
    pub writes: u64,
    /// Bytes those writes carried.
    pub bytes: u64,
    /// Writes where this daemon was a non-primary replica.
    pub replica_writes: u64,
    /// In-flight Active slots fenced by the recovery epoch when this
    /// daemon was killed (its own losses, not a survivor's).
    pub fenced_active: u64,
    /// Stripe copies this daemon received from rebalance repair.
    pub repairs_in: u64,
    /// Bytes of repair traffic it received.
    pub repair_bytes: u64,
    /// Models re-registered onto this daemon by a rebalance pass.
    pub rebalanced_in: u64,
    /// Whether the kill schedule took this daemon down.
    pub killed: bool,
}

/// Mutable per-tenant counters and latency histograms.
#[derive(Debug)]
struct TenantStat {
    admitted_ops: u64,
    throttled_ops: u64,
    shed_ops: u64,
    admitted_bytes: u64,
    checkpoint: Hist,
    restore: Hist,
}

impl TenantStat {
    fn new() -> TenantStat {
        TenantStat {
            admitted_ops: 0,
            throttled_ops: 0,
            shed_ops: 0,
            admitted_bytes: 0,
            checkpoint: Hist::new(),
            restore: Hist::new(),
        }
    }
}

/// One tenant's slice of a [`MetricsSnapshot`]: admission counters and
/// end-to-end latency histograms, split checkpoint vs restore. Integer
/// only, so snapshots stay `Eq`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// The tenant's name (the identity its connections were accepted
    /// under).
    pub tenant: String,
    /// Datapath requests admitted past the token buckets (restores
    /// count too — they bypass the buckets but are still admitted).
    pub admitted_ops: u64,
    /// Checkpoint requests shed by token-bucket admission control.
    pub throttled_ops: u64,
    /// Checkpoint requests shed by a dispatch queue that stayed full
    /// past the shed wait.
    pub shed_ops: u64,
    /// Payload bytes the admitted requests carried.
    pub admitted_bytes: u64,
    /// End-to-end latency (dispatch wait included) of checkpoint and
    /// delta-checkpoint requests.
    pub checkpoint: HistogramSnapshot,
    /// End-to-end latency of restore requests.
    pub restore: HistogramSnapshot,
}

/// One `(op, stage)` histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageHistogram {
    /// The operation.
    pub op: TraceOp,
    /// The stage within the operation.
    pub stage: Stage,
    /// The aggregated distribution.
    pub hist: HistogramSnapshot,
}

/// A point-in-time view of every histogram and gauge.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-`(op, stage)` histograms, sorted by `(op, stage)`.
    pub stages: Vec<StageHistogram>,
    /// Jobs currently queued on the daemon dispatch pool.
    pub dispatch_queue_depth: u64,
    /// High-water mark of queued jobs.
    pub dispatch_queue_peak: u64,
    /// Configured bound of the dispatch queue (0 = not configured).
    pub dispatch_queue_capacity: u64,
    /// Free bytes in the PMem allocator at the last refresh.
    #[serde(default)]
    pub pmem_free_bytes: u64,
    /// Used bytes (heap span minus free) at the last refresh.
    #[serde(default)]
    pub pmem_used_bytes: u64,
    /// Largest contiguous free extent at the last refresh.
    #[serde(default)]
    pub pmem_largest_free_extent: u64,
    /// Slot regions reclaimed by repack passes so far.
    #[serde(default)]
    pub reclaimed_slots: u64,
    /// Bytes returned to the allocator by those reclaims.
    #[serde(default)]
    pub reclaimed_bytes: u64,
    /// Repack passes completed so far.
    #[serde(default)]
    pub repack_passes: u64,
    /// Share (in permille) of the last striped checkpoint's
    /// persist+checksum work that overlapped the fabric transfer —
    /// `1000` means the seal pipeline ran entirely in the shadow of the
    /// CQ drain, `0` means it ran strictly after (the unstriped
    /// behaviour). Stays `0` until a multi-QP checkpoint completes.
    #[serde(default)]
    pub pipeline_overlap_permille: u64,
    /// Best-effort slot rollbacks that themselves failed (the slot was
    /// left Active for the recovery epoch to reap).
    #[serde(default)]
    pub rollback_failures: u64,
    /// Cluster-wide recovery epoch: bumped once per daemon loss; zero
    /// for single-daemon runs and fleets with no kills.
    #[serde(default)]
    pub recovery_epoch: u64,
    /// Restores that had to fall through a dead replica before a
    /// surviving one served the checkpoint.
    #[serde(default)]
    pub restore_failovers: u64,
    /// Per-daemon replication/rebalance counters, in daemon order.
    /// Empty outside placement-enabled fleet runs.
    #[serde(default)]
    pub fleet: Vec<DaemonFleetStats>,
    /// Per-tenant admission counters and latency breakdowns, sorted by
    /// tenant name. Empty until a tenant-attributed request arrives.
    #[serde(default)]
    pub tenants: Vec<TenantSnapshot>,
    /// Live extents in the content-addressed store (dedup daemons
    /// only; all dedup gauges stay zero otherwise).
    #[serde(default)]
    pub dedup_live_extents: u64,
    /// Of the live extents, how many are referenced more than once.
    #[serde(default)]
    pub dedup_shared_extents: u64,
    /// Of the live extents, how many are stored compressed.
    #[serde(default)]
    pub dedup_compressed_extents: u64,
    /// Logical bytes the live extents represent, weighted by refcount —
    /// what the checkpoints would occupy without dedup.
    #[serde(default)]
    pub dedup_logical_bytes: u64,
    /// Physical bytes the live extents occupy on media.
    #[serde(default)]
    pub dedup_stored_bytes: u64,
    /// Chunks processed by post-seal dedup ingests so far.
    #[serde(default)]
    pub dedup_chunks: u64,
    /// Of those, chunks that deduplicated against an existing extent.
    #[serde(default)]
    pub dedup_shared_chunks: u64,
    /// Post-seal ingests that failed and left their checkpoint as a
    /// plain region (correct but undeduplicated).
    #[serde(default)]
    pub dedup_ingest_failures: u64,
    /// Unreferenced extents reclaimed by repack sweeps so far.
    #[serde(default)]
    pub swept_extents: u64,
    /// Payload bytes those sweeps returned to the allocator.
    #[serde(default)]
    pub swept_extent_bytes: u64,
    /// Micro-pages in the on-PMem model catalog (catalog daemons only;
    /// all catalog gauges stay zero otherwise).
    #[serde(default)]
    pub catalog_pages: u64,
    /// Model entries the catalog pages hold.
    #[serde(default)]
    pub catalog_entries: u64,
    /// Catalog lookups served from the DRAM page cache.
    #[serde(default)]
    pub catalog_cache_hits: u64,
    /// Catalog lookups that had to decode a page from PMem.
    #[serde(default)]
    pub catalog_cache_misses: u64,
    /// Approximate DRAM bytes the clamped catalog page cache holds.
    #[serde(default)]
    pub catalog_cache_bytes: u64,
    /// Approximate DRAM bytes of the daemon's ModelMap mirror (zero
    /// when the catalog owns name resolution and the mirror is empty).
    #[serde(default)]
    pub model_map_bytes: u64,
}

impl MetricsSnapshot {
    /// The histogram for `(op, stage)`, if any samples were recorded.
    pub fn stage(&self, op: TraceOp, stage: Stage) -> Option<&HistogramSnapshot> {
        self.stages
            .iter()
            .find(|s| s.op == op && s.stage == stage)
            .map(|s| &s.hist)
    }

    /// Total nanoseconds recorded for `(op, stage)` (0 if absent).
    pub fn stage_total_ns(&self, op: TraceOp, stage: Stage) -> u64 {
        self.stage(op, stage).map_or(0, |h| h.total_ns)
    }

    /// The named tenant's breakdown, if it recorded anything.
    pub fn tenant(&self, name: &str) -> Option<&TenantSnapshot> {
        self.tenants.iter().find(|t| t.tenant == name)
    }

    /// External fragmentation in permille (integer-only, so snapshots
    /// stay `Eq`): `1000 * (1 - largest_extent / free)`. Zero when free
    /// space is zero (an empty or exhausted allocator has nothing to
    /// fragment) or one contiguous extent; the ratio is computed in
    /// 128-bit so byte counts near `u64::MAX` cannot overflow into a
    /// garbage gauge.
    pub fn fragmentation_permille(&self) -> u64 {
        if self.pmem_free_bytes == 0 {
            return 0;
        }
        let contiguous = self.pmem_largest_free_extent.min(self.pmem_free_bytes);
        1000 - (contiguous as u128 * 1000 / self.pmem_free_bytes as u128) as u64
    }

    /// Physical-over-logical dedup ratio in permille (integer-only):
    /// `1000 * stored / logical`. `1000` when nothing is deduplicated
    /// (or dedup is off — both gauges zero); lower is better. Computed
    /// in 128-bit so byte counts near `u64::MAX` cannot overflow.
    pub fn dedup_ratio_permille(&self) -> u64 {
        if self.dedup_logical_bytes == 0 {
            return 1000;
        }
        (self.dedup_stored_bytes as u128 * 1000 / self.dedup_logical_bytes as u128) as u64
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    hists: Mutex<BTreeMap<(TraceOp, Stage), Hist>>,
    tenants: Mutex<BTreeMap<String, TenantStat>>,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    queue_capacity: AtomicU64,
    pmem_free_bytes: AtomicU64,
    pmem_used_bytes: AtomicU64,
    pmem_largest_free_extent: AtomicU64,
    reclaimed_slots: AtomicU64,
    reclaimed_bytes: AtomicU64,
    repack_passes: AtomicU64,
    pipeline_overlap_permille: AtomicU64,
    rollback_failures: AtomicU64,
    dedup_live_extents: AtomicU64,
    dedup_shared_extents: AtomicU64,
    dedup_compressed_extents: AtomicU64,
    dedup_logical_bytes: AtomicU64,
    dedup_stored_bytes: AtomicU64,
    dedup_chunks: AtomicU64,
    dedup_shared_chunks: AtomicU64,
    dedup_ingest_failures: AtomicU64,
    swept_extents: AtomicU64,
    swept_extent_bytes: AtomicU64,
    catalog_pages: AtomicU64,
    catalog_entries: AtomicU64,
    catalog_cache_hits: AtomicU64,
    catalog_cache_misses: AtomicU64,
    catalog_cache_bytes: AtomicU64,
    model_map_bytes: AtomicU64,
}

/// Shared metrics registry. Cloning shares the underlying histograms
/// and gauges (like [`crate::Stats`]); recording is always on — a
/// sample is one mutex-guarded bucket increment.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one stage duration sample.
    pub fn record_stage(&self, op: TraceOp, stage: Stage, d: SimDuration) {
        let mut hists = self.inner.hists.lock();
        hists
            .entry((op, stage))
            .or_insert_with(Hist::new)
            .record(d.as_nanos());
    }

    /// Records one admitted datapath request of `bytes` payload for
    /// `tenant` (checkpoints charged past the token buckets, and
    /// restores, which bypass them).
    pub fn tenant_admitted(&self, tenant: &str, bytes: u64) {
        let mut tenants = self.inner.tenants.lock();
        let t = tenants
            .entry(tenant.to_string())
            .or_insert_with(TenantStat::new);
        t.admitted_ops += 1;
        t.admitted_bytes += bytes;
    }

    /// Records one checkpoint request shed by token-bucket admission.
    pub fn tenant_throttled(&self, tenant: &str) {
        self.inner
            .tenants
            .lock()
            .entry(tenant.to_string())
            .or_insert_with(TenantStat::new)
            .throttled_ops += 1;
    }

    /// Records one checkpoint request shed by a full dispatch queue.
    pub fn tenant_shed(&self, tenant: &str) {
        self.inner
            .tenants
            .lock()
            .entry(tenant.to_string())
            .or_insert_with(TenantStat::new)
            .shed_ops += 1;
    }

    /// Records one completed datapath request's end-to-end latency for
    /// `tenant`. Checkpoints and delta checkpoints land in the
    /// checkpoint histogram, restores in the restore histogram; other
    /// ops are not tracked per tenant.
    pub fn record_tenant_op(&self, tenant: &str, op: TraceOp, d: SimDuration) {
        let mut tenants = self.inner.tenants.lock();
        let t = tenants
            .entry(tenant.to_string())
            .or_insert_with(TenantStat::new);
        match op {
            TraceOp::Checkpoint | TraceOp::DeltaCheckpoint => t.checkpoint.record(d.as_nanos()),
            TraceOp::Restore => t.restore.record(d.as_nanos()),
            _ => {}
        }
    }

    /// Notes a job entering the dispatch queue; updates the peak gauge.
    pub fn queue_enter(&self) {
        let depth = self.inner.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Notes a job leaving the dispatch queue for a worker.
    pub fn queue_exit(&self) {
        // Saturate rather than wrap if exit/enter ever race at zero.
        let _ = self
            .inner
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Records the configured dispatch-queue bound.
    pub fn set_queue_capacity(&self, capacity: u64) {
        self.inner.queue_capacity.store(capacity, Ordering::Relaxed);
    }

    /// Refreshes the PMem space gauges from the allocator's view.
    pub fn set_space(&self, free: u64, used: u64, largest_extent: u64) {
        self.inner.pmem_free_bytes.store(free, Ordering::Relaxed);
        self.inner.pmem_used_bytes.store(used, Ordering::Relaxed);
        self.inner
            .pmem_largest_free_extent
            .store(largest_extent, Ordering::Relaxed);
    }

    /// Records one reclaimed slot region returning `bytes`.
    pub fn record_reclaimed(&self, bytes: u64) {
        self.inner.reclaimed_slots.fetch_add(1, Ordering::Relaxed);
        self.inner
            .reclaimed_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one completed repack pass.
    pub fn record_repack_pass(&self) {
        self.inner.repack_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how much of a striped checkpoint's seal pipeline ran in
    /// the shadow of the fabric transfer, in permille of the pipeline's
    /// busy time (clamped to `1000`).
    pub fn set_pipeline_overlap_permille(&self, permille: u64) {
        self.inner
            .pipeline_overlap_permille
            .store(permille.min(1000), Ordering::Relaxed);
    }

    /// Computes and records the pipeline-overlap gauge from raw
    /// durations: `overlapped / busy` in permille. A checkpoint that
    /// granted no seal service at all (`busy` is zero — e.g. an empty
    /// or fully delta-carried slot) leaves the gauge untouched instead
    /// of dividing by zero; the ratio is computed in 128-bit so huge
    /// virtual durations cannot overflow into a garbage reading.
    pub fn set_pipeline_overlap(&self, overlapped: SimDuration, busy: SimDuration) {
        if busy.is_zero() {
            return;
        }
        let permille = (overlapped.as_nanos() as u128 * 1000 / busy.as_nanos() as u128) as u64;
        self.set_pipeline_overlap_permille(permille);
    }

    /// Records one best-effort rollback that failed and left its slot
    /// Active (mirrors [`crate::Stats::record_rollback_failure`], but
    /// on the operator-facing snapshot surface).
    pub fn record_rollback_failure(&self) {
        self.inner.rollback_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Refreshes the content-addressed extent-store gauges.
    pub fn set_dedup(
        &self,
        live: u64,
        shared: u64,
        compressed: u64,
        logical_bytes: u64,
        stored_bytes: u64,
    ) {
        self.inner.dedup_live_extents.store(live, Ordering::Relaxed);
        self.inner
            .dedup_shared_extents
            .store(shared, Ordering::Relaxed);
        self.inner
            .dedup_compressed_extents
            .store(compressed, Ordering::Relaxed);
        self.inner
            .dedup_logical_bytes
            .store(logical_bytes, Ordering::Relaxed);
        self.inner
            .dedup_stored_bytes
            .store(stored_bytes, Ordering::Relaxed);
    }

    /// Records one completed post-seal dedup ingest: `chunks` chunks
    /// processed, of which `shared_chunks` hit an existing extent.
    pub fn record_dedup_ingest(&self, chunks: u64, shared_chunks: u64) {
        self.inner.dedup_chunks.fetch_add(chunks, Ordering::Relaxed);
        self.inner
            .dedup_shared_chunks
            .fetch_add(shared_chunks, Ordering::Relaxed);
    }

    /// Records one post-seal dedup ingest that failed (the checkpoint
    /// stays a plain region).
    pub fn record_dedup_ingest_failure(&self) {
        self.inner
            .dedup_ingest_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one repack sweep reclaiming `extents` unreferenced
    /// extents totalling `bytes` of payload.
    pub fn record_swept_extents(&self, extents: u64, bytes: u64) {
        self.inner
            .swept_extents
            .fetch_add(extents, Ordering::Relaxed);
        self.inner
            .swept_extent_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Refreshes the on-PMem model-catalog gauges.
    pub fn set_catalog(
        &self,
        pages: u64,
        entries: u64,
        cache_hits: u64,
        cache_misses: u64,
        cache_bytes: u64,
    ) {
        self.inner.catalog_pages.store(pages, Ordering::Relaxed);
        self.inner.catalog_entries.store(entries, Ordering::Relaxed);
        self.inner
            .catalog_cache_hits
            .store(cache_hits, Ordering::Relaxed);
        self.inner
            .catalog_cache_misses
            .store(cache_misses, Ordering::Relaxed);
        self.inner
            .catalog_cache_bytes
            .store(cache_bytes, Ordering::Relaxed);
    }

    /// Refreshes the DRAM footprint gauge of the daemon's ModelMap.
    pub fn set_model_map_bytes(&self, bytes: u64) {
        self.inner.model_map_bytes.store(bytes, Ordering::Relaxed);
    }

    /// The histogram snapshot for `(op, stage)`, if any samples exist.
    pub fn stage(&self, op: TraceOp, stage: Stage) -> Option<HistogramSnapshot> {
        self.inner
            .hists
            .lock()
            .get(&(op, stage))
            .map(Hist::snapshot)
    }

    /// A consistent view of all histograms and gauges. Deterministic:
    /// stages are emitted in `(op, stage)` order regardless of the
    /// recording interleaving.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stages = self
            .inner
            .hists
            .lock()
            .iter()
            .map(|(&(op, stage), h)| StageHistogram {
                op,
                stage,
                hist: h.snapshot(),
            })
            .collect();
        let tenants = self
            .inner
            .tenants
            .lock()
            .iter()
            .map(|(name, t)| TenantSnapshot {
                tenant: name.clone(),
                admitted_ops: t.admitted_ops,
                throttled_ops: t.throttled_ops,
                shed_ops: t.shed_ops,
                admitted_bytes: t.admitted_bytes,
                checkpoint: t.checkpoint.snapshot(),
                restore: t.restore.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            stages,
            tenants,
            dispatch_queue_depth: self.inner.queue_depth.load(Ordering::Relaxed),
            dispatch_queue_peak: self.inner.queue_peak.load(Ordering::Relaxed),
            dispatch_queue_capacity: self.inner.queue_capacity.load(Ordering::Relaxed),
            pmem_free_bytes: self.inner.pmem_free_bytes.load(Ordering::Relaxed),
            pmem_used_bytes: self.inner.pmem_used_bytes.load(Ordering::Relaxed),
            pmem_largest_free_extent: self.inner.pmem_largest_free_extent.load(Ordering::Relaxed),
            reclaimed_slots: self.inner.reclaimed_slots.load(Ordering::Relaxed),
            reclaimed_bytes: self.inner.reclaimed_bytes.load(Ordering::Relaxed),
            repack_passes: self.inner.repack_passes.load(Ordering::Relaxed),
            pipeline_overlap_permille: self.inner.pipeline_overlap_permille.load(Ordering::Relaxed),
            rollback_failures: self.inner.rollback_failures.load(Ordering::Relaxed),
            recovery_epoch: 0,
            restore_failovers: 0,
            fleet: Vec::new(),
            dedup_live_extents: self.inner.dedup_live_extents.load(Ordering::Relaxed),
            dedup_shared_extents: self.inner.dedup_shared_extents.load(Ordering::Relaxed),
            dedup_compressed_extents: self.inner.dedup_compressed_extents.load(Ordering::Relaxed),
            dedup_logical_bytes: self.inner.dedup_logical_bytes.load(Ordering::Relaxed),
            dedup_stored_bytes: self.inner.dedup_stored_bytes.load(Ordering::Relaxed),
            dedup_chunks: self.inner.dedup_chunks.load(Ordering::Relaxed),
            dedup_shared_chunks: self.inner.dedup_shared_chunks.load(Ordering::Relaxed),
            dedup_ingest_failures: self.inner.dedup_ingest_failures.load(Ordering::Relaxed),
            swept_extents: self.inner.swept_extents.load(Ordering::Relaxed),
            swept_extent_bytes: self.inner.swept_extent_bytes.load(Ordering::Relaxed),
            catalog_pages: self.inner.catalog_pages.load(Ordering::Relaxed),
            catalog_entries: self.inner.catalog_entries.load(Ordering::Relaxed),
            catalog_cache_hits: self.inner.catalog_cache_hits.load(Ordering::Relaxed),
            catalog_cache_misses: self.inner.catalog_cache_misses.load(Ordering::Relaxed),
            catalog_cache_bytes: self.inner.catalog_cache_bytes.load(Ordering::Relaxed),
            model_map_bytes: self.inner.model_map_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(10), 1024);
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let m = Metrics::new();
        for ns in [
            100u64, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 1_000_000,
        ] {
            m.record_stage(
                TraceOp::Checkpoint,
                Stage::Persist,
                SimDuration::from_nanos(ns),
            );
        }
        let h = m.stage(TraceOp::Checkpoint, Stage::Persist).unwrap();
        assert_eq!(h.count, 10);
        assert_eq!(h.min_ns, 100);
        assert_eq!(h.max_ns, 1_000_000);
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max_ns);
        assert!(h.quantile(0.0) >= h.min_ns);
        assert!(h.quantile(1.0) <= h.max_ns);
        assert_eq!(
            h.mean_ns(),
            (100 + 200 + 400 + 800 + 1_600 + 3_200 + 6_400 + 12_800 + 25_600 + 1_000_000) / 10
        );
    }

    #[test]
    fn quantile_boundary_semantics_are_pinned() {
        // Empty: 0 for every q, including the boundaries and NaN.
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.5, 1.0, f64::NAN, -1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0);
        }

        // Single sample: the sample itself for every q.
        let m = Metrics::new();
        m.record_stage(
            TraceOp::Checkpoint,
            Stage::Total,
            SimDuration::from_nanos(777),
        );
        let one = m.stage(TraceOp::Checkpoint, Stage::Total).unwrap();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 777, "q={q}");
        }

        // Boundaries hit the observed extremes exactly, out-of-range
        // and NaN q values clamp to them.
        let m = Metrics::new();
        for ns in [100u64, 5_000, 90_000] {
            m.record_stage(TraceOp::Restore, Stage::Total, SimDuration::from_nanos(ns));
        }
        let h = m.stage(TraceOp::Restore, Stage::Total).unwrap();
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!(h.quantile(-3.0), 100);
        assert_eq!(h.quantile(f64::NAN), 100);
        assert_eq!(h.quantile(1.0), 90_000);
        assert_eq!(h.quantile(7.0), 90_000);
        // Interior quantiles stay within [min, max] and monotone.
        let mut prev = h.quantile(0.0);
        for i in 1..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= prev, "quantile must be monotone in q");
            assert!((h.min_ns..=h.max_ns).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = HistogramSnapshot::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean_ns(), 0);
        let m = Metrics::new();
        assert!(m.stage(TraceOp::Restore, Stage::Total).is_none());
        assert_eq!(
            m.snapshot().stage_total_ns(TraceOp::Restore, Stage::Total),
            0
        );
    }

    #[test]
    fn queue_gauges_track_depth_and_peak() {
        let m = Metrics::new();
        m.set_queue_capacity(8);
        m.queue_enter();
        m.queue_enter();
        m.queue_exit();
        m.queue_enter();
        let s = m.snapshot();
        assert_eq!(s.dispatch_queue_depth, 2);
        assert_eq!(s.dispatch_queue_peak, 2);
        assert_eq!(s.dispatch_queue_capacity, 8);
        m.queue_exit();
        m.queue_exit();
        m.queue_exit(); // extra exit saturates at zero
        assert_eq!(m.snapshot().dispatch_queue_depth, 0);
    }

    #[test]
    fn space_gauges_and_fragmentation() {
        let m = Metrics::new();
        m.set_space(1000, 3000, 250);
        m.record_reclaimed(4096);
        m.record_reclaimed(4096);
        m.record_repack_pass();
        let s = m.snapshot();
        assert_eq!(s.pmem_free_bytes, 1000);
        assert_eq!(s.pmem_used_bytes, 3000);
        assert_eq!(s.pmem_largest_free_extent, 250);
        assert_eq!(s.reclaimed_slots, 2);
        assert_eq!(s.reclaimed_bytes, 8192);
        assert_eq!(s.repack_passes, 1);
        // 1 - 250/1000 = 75%.
        assert_eq!(s.fragmentation_permille(), 750);
        m.set_space(1000, 3000, 1000);
        assert_eq!(m.snapshot().fragmentation_permille(), 0);
        m.set_space(0, 4000, 0);
        assert_eq!(m.snapshot().fragmentation_permille(), 0);
    }

    #[test]
    fn pipeline_overlap_gauge_clamps_to_permille() {
        let m = Metrics::new();
        assert_eq!(m.snapshot().pipeline_overlap_permille, 0);
        m.set_pipeline_overlap_permille(640);
        assert_eq!(m.snapshot().pipeline_overlap_permille, 640);
        m.set_pipeline_overlap_permille(5000);
        assert_eq!(m.snapshot().pipeline_overlap_permille, 1000);
    }

    #[test]
    fn pipeline_overlap_from_durations_guards_zero_busy() {
        let m = Metrics::new();
        m.set_pipeline_overlap_permille(500);
        // No seal service granted: the gauge must not divide by zero
        // or clobber the last real reading.
        m.set_pipeline_overlap(SimDuration::from_secs(1), SimDuration::ZERO);
        assert_eq!(m.snapshot().pipeline_overlap_permille, 500);
        m.set_pipeline_overlap(SimDuration::from_millis(640), SimDuration::from_secs(1));
        assert_eq!(m.snapshot().pipeline_overlap_permille, 640);
        // Huge virtual durations must not overflow the ratio.
        let huge = SimDuration::from_nanos(u64::MAX);
        m.set_pipeline_overlap(huge, huge);
        assert_eq!(m.snapshot().pipeline_overlap_permille, 1000);
    }

    #[test]
    fn fragmentation_handles_zero_and_huge_denominators() {
        let s = MetricsSnapshot {
            pmem_free_bytes: 0,
            pmem_largest_free_extent: 0,
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.fragmentation_permille(), 0, "empty allocator");
        let s = MetricsSnapshot {
            pmem_free_bytes: u64::MAX,
            pmem_largest_free_extent: u64::MAX / 2,
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.fragmentation_permille(), 501, "no 128-bit overflow");
        let s = MetricsSnapshot {
            pmem_free_bytes: 100,
            pmem_largest_free_extent: 400, // stale gauge larger than free
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.fragmentation_permille(), 0, "extent clamped to free");
    }

    #[test]
    fn rollback_failures_surface_in_the_snapshot() {
        let m = Metrics::new();
        assert_eq!(m.snapshot().rollback_failures, 0);
        m.record_rollback_failure();
        m.record_rollback_failure();
        let s = m.snapshot();
        assert_eq!(s.rollback_failures, 2);
        // Fleet gauges default empty/zero outside fleet runs; the
        // fleet harness fills them on its own snapshot copy.
        assert_eq!(s.recovery_epoch, 0);
        assert_eq!(s.restore_failovers, 0);
        assert!(s.fleet.is_empty());
    }

    #[test]
    fn tenant_breakdowns_aggregate_and_sort_by_name() {
        let m = Metrics::new();
        assert!(m.snapshot().tenants.is_empty());
        m.tenant_admitted("zeta", 4096);
        m.tenant_admitted("alpha", 100);
        m.tenant_admitted("alpha", 200);
        m.tenant_throttled("alpha");
        m.tenant_shed("alpha");
        m.record_tenant_op("alpha", TraceOp::Checkpoint, SimDuration::from_micros(10));
        m.record_tenant_op(
            "alpha",
            TraceOp::DeltaCheckpoint,
            SimDuration::from_micros(20),
        );
        m.record_tenant_op("alpha", TraceOp::Restore, SimDuration::from_micros(5));
        let s = m.snapshot();
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[0].tenant, "alpha");
        assert_eq!(s.tenants[1].tenant, "zeta");
        let a = s.tenant("alpha").unwrap();
        assert_eq!(a.admitted_ops, 2);
        assert_eq!(a.throttled_ops, 1);
        assert_eq!(a.shed_ops, 1);
        assert_eq!(a.admitted_bytes, 300);
        // Checkpoint + delta land in one histogram, restore in the other.
        assert_eq!(a.checkpoint.count, 2);
        assert_eq!(a.restore.count, 1);
        assert_eq!(a.restore.max_ns, 5_000);
        assert!(s.tenant("nobody").is_none());
    }

    #[test]
    fn clones_share_state_and_snapshots_are_deterministic() {
        let a = Metrics::new();
        let b = a.clone();
        b.record_stage(TraceOp::Restore, Stage::Total, SimDuration::from_micros(5));
        a.record_stage(
            TraceOp::Checkpoint,
            Stage::Total,
            SimDuration::from_micros(3),
        );
        let s = a.snapshot();
        assert_eq!(s.stages.len(), 2);
        // BTreeMap ordering: Checkpoint < Restore by declaration order.
        assert_eq!(s.stages[0].op, TraceOp::Checkpoint);
        assert_eq!(s.stages[1].op, TraceOp::Restore);
        assert_eq!(s, b.snapshot());
        assert_eq!(s.stage_total_ns(TraceOp::Checkpoint, Stage::Total), 3_000);
    }
}
