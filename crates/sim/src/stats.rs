//! Datapath counters used to assert the zero-copy / zero-crossing claims.
//!
//! The paper's core claim is structural: Portus performs *one* data
//! movement per tensor (a one-sided RDMA read from GPU memory into PMem),
//! *zero* serializer invocations, and *zero* kernel crossings, whereas the
//! traditional datapath performs three copies and three crossings
//! (Fig. 3/5). Every simulated device increments these counters, so tests
//! can assert the structural claim, not just the timing claim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Thread-safe datapath counters. Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    data_copies: AtomicU64,
    bytes_copied: AtomicU64,
    kernel_crossings: AtomicU64,
    serializations: AtomicU64,
    deserializations: AtomicU64,
    rdma_one_sided_ops: AtomicU64,
    rdma_two_sided_ops: AtomicU64,
    bytes_over_network: AtomicU64,
    control_messages: AtomicU64,
    pmem_flushes: AtomicU64,
    pmem_fences: AtomicU64,
    posted_verbs: AtomicU64,
    doorbell_batches: AtomicU64,
    coalesced_verbs: AtomicU64,
    coalesced_bytes: AtomicU64,
    persist_ns: AtomicU64,
    checksum_ns: AtomicU64,
    failed_verbs: AtomicU64,
    retried_verbs: AtomicU64,
    rolled_back_slots: AtomicU64,
    rollback_failures: AtomicU64,
    repack_passes: AtomicU64,
    reclaimed_slots: AtomicU64,
    reclaimed_bytes: AtomicU64,
    oos_recoveries: AtomicU64,
}

/// A point-in-time snapshot of [`Stats`], suitable for diffing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Number of bulk data movements (memcpy, DMA, RDMA payload, device
    /// write). One *logical* movement per call site.
    pub data_copies: u64,
    /// Total bytes moved by those copies.
    pub bytes_copied: u64,
    /// User/kernel mode crossings.
    pub kernel_crossings: u64,
    /// Serializer invocations (torch.save-style container encodes).
    pub serializations: u64,
    /// Deserializer invocations.
    pub deserializations: u64,
    /// One-sided RDMA verbs (READ/WRITE) executed.
    pub rdma_one_sided_ops: u64,
    /// Two-sided RDMA operations (SEND/RECV pairs) executed.
    pub rdma_two_sided_ops: u64,
    /// Bytes that traversed the fabric.
    pub bytes_over_network: u64,
    /// Control-channel messages exchanged.
    pub control_messages: u64,
    /// Cache-line flushes issued against PMem.
    pub pmem_flushes: u64,
    /// Persistence fences issued against PMem.
    pub pmem_fences: u64,
    /// Work-queue entries posted through the asynchronous posted-verb
    /// interface (one per WQE, not per tensor: a coalesced gather WQE
    /// counts once).
    pub posted_verbs: u64,
    /// Doorbell batches rung: groups of posted verbs that shared one
    /// full-latency doorbell (paper §III-D request batching).
    pub doorbell_batches: u64,
    /// Posted WQEs that carried more than one scatter/gather segment
    /// (coalesced runs of `rel_off`-contiguous tensors).
    pub coalesced_verbs: u64,
    /// Bytes moved by multi-segment (coalesced) WQEs.
    pub coalesced_bytes: u64,
    /// Virtual nanoseconds the daemon spent persisting pulled data
    /// (flush + fence) — the "persist" phase of the checkpoint breakdown.
    pub persist_ns: u64,
    /// Virtual nanoseconds the daemon spent checksumming slot data — the
    /// "checksum" phase of the checkpoint breakdown.
    pub checksum_ns: u64,
    /// Posted work-queue entries that completed with an error (injected
    /// faults and genuine fabric failures alike).
    pub failed_verbs: u64,
    /// Failed WQEs that were re-posted by the daemon's datapath retry
    /// loop (one count per re-post, not per WQE).
    pub retried_verbs: u64,
    /// Checkpoint target slots rolled back (flag reverted or collapsed)
    /// after a datapath failure exhausted its retries.
    pub rolled_back_slots: u64,
    /// Best-effort slot rollbacks that themselves failed (the original
    /// datapath error is still the one surfaced to the client).
    pub rollback_failures: u64,
    /// Space-management repack passes completed (manual, watermark, and
    /// `OutOfSpace`-recovery passes alike).
    pub repack_passes: u64,
    /// Checkpoint slots whose regions repack passes reclaimed.
    pub reclaimed_slots: u64,
    /// Bytes those reclaimed regions returned to the allocator.
    pub reclaimed_bytes: u64,
    /// Checkpoints that first failed allocation with `OutOfSpace` and
    /// then succeeded after the automatic repack-and-retry.
    pub oos_recoveries: u64,
}

impl Stats {
    /// Creates a fresh set of zeroed counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records one bulk data movement of `bytes`.
    pub fn record_copy(&self, bytes: u64) {
        self.inner.data_copies.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` user/kernel crossings.
    pub fn record_kernel_crossings(&self, n: u64) {
        self.inner.kernel_crossings.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one serializer invocation.
    pub fn record_serialization(&self) {
        self.inner.serializations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one deserializer invocation.
    pub fn record_deserialization(&self) {
        self.inner.deserializations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a one-sided RDMA verb moving `bytes`.
    pub fn record_one_sided(&self, bytes: u64) {
        self.inner
            .rdma_one_sided_ops
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_over_network
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a two-sided RDMA exchange moving `bytes`.
    pub fn record_two_sided(&self, bytes: u64) {
        self.inner
            .rdma_two_sided_ops
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_over_network
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one control-channel message.
    pub fn record_control_message(&self) {
        self.inner.control_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `lines` cache-line flushes.
    pub fn record_pmem_flushes(&self, lines: u64) {
        self.inner.pmem_flushes.fetch_add(lines, Ordering::Relaxed);
    }

    /// Records one persistence fence.
    pub fn record_pmem_fence(&self) {
        self.inner.pmem_fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one posted work-queue entry (WQE).
    pub fn record_posted_verb(&self) {
        self.inner.posted_verbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one doorbell batch (a group of posted verbs sharing one
    /// full-latency doorbell).
    pub fn record_doorbell_batch(&self) {
        self.inner.doorbell_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one multi-segment (coalesced) WQE moving `bytes`.
    pub fn record_coalesced(&self, bytes: u64) {
        self.inner.coalesced_verbs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .coalesced_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accumulates `ns` virtual nanoseconds of persist-phase time.
    pub fn record_persist_ns(&self, ns: u64) {
        self.inner.persist_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulates `ns` virtual nanoseconds of checksum-phase time.
    pub fn record_checksum_ns(&self, ns: u64) {
        self.inner.checksum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one posted WQE that completed with an error.
    pub fn record_failed_verb(&self) {
        self.inner.failed_verbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one re-post of a previously failed WQE.
    pub fn record_retried_verb(&self) {
        self.inner.retried_verbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one checkpoint slot rolled back after a datapath failure.
    pub fn record_rolled_back_slot(&self) {
        self.inner.rolled_back_slots.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one best-effort slot rollback that itself failed.
    pub fn record_rollback_failure(&self) {
        self.inner.rollback_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed repack pass.
    pub fn record_repack_pass(&self) {
        self.inner.repack_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one slot region reclaimed by repacking, returning `bytes`.
    pub fn record_reclaimed_slot(&self, bytes: u64) {
        self.inner.reclaimed_slots.fetch_add(1, Ordering::Relaxed);
        self.inner
            .reclaimed_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one checkpoint saved by the automatic repack-and-retry
    /// after an `OutOfSpace` allocation failure.
    pub fn record_oos_recovery(&self) {
        self.inner.oos_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let i = &self.inner;
        StatsSnapshot {
            data_copies: i.data_copies.load(Ordering::Relaxed),
            bytes_copied: i.bytes_copied.load(Ordering::Relaxed),
            kernel_crossings: i.kernel_crossings.load(Ordering::Relaxed),
            serializations: i.serializations.load(Ordering::Relaxed),
            deserializations: i.deserializations.load(Ordering::Relaxed),
            rdma_one_sided_ops: i.rdma_one_sided_ops.load(Ordering::Relaxed),
            rdma_two_sided_ops: i.rdma_two_sided_ops.load(Ordering::Relaxed),
            bytes_over_network: i.bytes_over_network.load(Ordering::Relaxed),
            control_messages: i.control_messages.load(Ordering::Relaxed),
            pmem_flushes: i.pmem_flushes.load(Ordering::Relaxed),
            pmem_fences: i.pmem_fences.load(Ordering::Relaxed),
            posted_verbs: i.posted_verbs.load(Ordering::Relaxed),
            doorbell_batches: i.doorbell_batches.load(Ordering::Relaxed),
            coalesced_verbs: i.coalesced_verbs.load(Ordering::Relaxed),
            coalesced_bytes: i.coalesced_bytes.load(Ordering::Relaxed),
            persist_ns: i.persist_ns.load(Ordering::Relaxed),
            checksum_ns: i.checksum_ns.load(Ordering::Relaxed),
            failed_verbs: i.failed_verbs.load(Ordering::Relaxed),
            retried_verbs: i.retried_verbs.load(Ordering::Relaxed),
            rolled_back_slots: i.rolled_back_slots.load(Ordering::Relaxed),
            rollback_failures: i.rollback_failures.load(Ordering::Relaxed),
            repack_passes: i.repack_passes.load(Ordering::Relaxed),
            reclaimed_slots: i.reclaimed_slots.load(Ordering::Relaxed),
            reclaimed_bytes: i.reclaimed_bytes.load(Ordering::Relaxed),
            oos_recoveries: i.oos_recoveries.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            data_copies: self.data_copies.saturating_sub(earlier.data_copies),
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            kernel_crossings: self
                .kernel_crossings
                .saturating_sub(earlier.kernel_crossings),
            serializations: self.serializations.saturating_sub(earlier.serializations),
            deserializations: self
                .deserializations
                .saturating_sub(earlier.deserializations),
            rdma_one_sided_ops: self
                .rdma_one_sided_ops
                .saturating_sub(earlier.rdma_one_sided_ops),
            rdma_two_sided_ops: self
                .rdma_two_sided_ops
                .saturating_sub(earlier.rdma_two_sided_ops),
            bytes_over_network: self
                .bytes_over_network
                .saturating_sub(earlier.bytes_over_network),
            control_messages: self
                .control_messages
                .saturating_sub(earlier.control_messages),
            pmem_flushes: self.pmem_flushes.saturating_sub(earlier.pmem_flushes),
            pmem_fences: self.pmem_fences.saturating_sub(earlier.pmem_fences),
            posted_verbs: self.posted_verbs.saturating_sub(earlier.posted_verbs),
            doorbell_batches: self
                .doorbell_batches
                .saturating_sub(earlier.doorbell_batches),
            coalesced_verbs: self.coalesced_verbs.saturating_sub(earlier.coalesced_verbs),
            coalesced_bytes: self.coalesced_bytes.saturating_sub(earlier.coalesced_bytes),
            persist_ns: self.persist_ns.saturating_sub(earlier.persist_ns),
            checksum_ns: self.checksum_ns.saturating_sub(earlier.checksum_ns),
            failed_verbs: self.failed_verbs.saturating_sub(earlier.failed_verbs),
            retried_verbs: self.retried_verbs.saturating_sub(earlier.retried_verbs),
            rolled_back_slots: self
                .rolled_back_slots
                .saturating_sub(earlier.rolled_back_slots),
            rollback_failures: self
                .rollback_failures
                .saturating_sub(earlier.rollback_failures),
            repack_passes: self.repack_passes.saturating_sub(earlier.repack_passes),
            reclaimed_slots: self.reclaimed_slots.saturating_sub(earlier.reclaimed_slots),
            reclaimed_bytes: self.reclaimed_bytes.saturating_sub(earlier.reclaimed_bytes),
            oos_recoveries: self.oos_recoveries.saturating_sub(earlier.oos_recoveries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.record_copy(100);
        s.record_copy(28);
        s.record_kernel_crossings(3);
        s.record_serialization();
        s.record_one_sided(64);
        let snap = s.snapshot();
        assert_eq!(snap.data_copies, 2);
        assert_eq!(snap.bytes_copied, 128);
        assert_eq!(snap.kernel_crossings, 3);
        assert_eq!(snap.serializations, 1);
        assert_eq!(snap.rdma_one_sided_ops, 1);
        assert_eq!(snap.bytes_over_network, 64);
    }

    #[test]
    fn clones_share_counters() {
        let a = Stats::new();
        let b = a.clone();
        a.record_control_message();
        b.record_control_message();
        assert_eq!(a.snapshot().control_messages, 2);
    }

    #[test]
    fn since_diffs() {
        let s = Stats::new();
        s.record_copy(10);
        let before = s.snapshot();
        s.record_copy(5);
        s.record_pmem_flushes(4);
        s.record_pmem_fence();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.data_copies, 1);
        assert_eq!(delta.bytes_copied, 5);
        assert_eq!(delta.pmem_flushes, 4);
        assert_eq!(delta.pmem_fences, 1);
    }

    #[test]
    fn datapath_phase_counters_accumulate() {
        let s = Stats::new();
        s.record_doorbell_batch();
        s.record_posted_verb();
        s.record_posted_verb();
        s.record_coalesced(4096);
        s.record_persist_ns(1_000);
        s.record_checksum_ns(250);
        let before = s.snapshot();
        assert_eq!(before.posted_verbs, 2);
        assert_eq!(before.doorbell_batches, 1);
        assert_eq!(before.coalesced_verbs, 1);
        assert_eq!(before.coalesced_bytes, 4096);
        s.record_persist_ns(500);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.persist_ns, 500);
        assert_eq!(delta.checksum_ns, 0);
        assert_eq!(delta.posted_verbs, 0);
    }

    #[test]
    fn failure_counters_accumulate() {
        let s = Stats::new();
        s.record_failed_verb();
        s.record_failed_verb();
        s.record_retried_verb();
        s.record_rolled_back_slot();
        let snap = s.snapshot();
        assert_eq!(snap.failed_verbs, 2);
        assert_eq!(snap.retried_verbs, 1);
        assert_eq!(snap.rolled_back_slots, 1);
        let before = snap;
        s.record_failed_verb();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.failed_verbs, 1);
        assert_eq!(delta.retried_verbs, 0);
        assert_eq!(delta.rolled_back_slots, 0);
    }

    #[test]
    fn space_management_counters_accumulate() {
        let s = Stats::new();
        s.record_repack_pass();
        s.record_reclaimed_slot(4096);
        s.record_reclaimed_slot(8192);
        s.record_oos_recovery();
        s.record_rollback_failure();
        let snap = s.snapshot();
        assert_eq!(snap.repack_passes, 1);
        assert_eq!(snap.reclaimed_slots, 2);
        assert_eq!(snap.reclaimed_bytes, 12288);
        assert_eq!(snap.oos_recoveries, 1);
        assert_eq!(snap.rollback_failures, 1);
        let before = snap;
        s.record_repack_pass();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.repack_passes, 1);
        assert_eq!(delta.reclaimed_slots, 0);
        assert_eq!(delta.reclaimed_bytes, 0);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = Stats::new();
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let s = s.clone();
                sc.spawn(move || {
                    for _ in 0..1000 {
                        s.record_copy(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().data_copies, 8000);
        assert_eq!(s.snapshot().bytes_copied, 8000);
    }
}
