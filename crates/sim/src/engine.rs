//! A minimal discrete-event engine.
//!
//! The end-to-end training experiments (Figs. 14–16) interleave compute
//! phases, asynchronous checkpoint pulls, and policy decisions on one
//! virtual timeline. [`Engine`] provides the classic event-heap loop:
//! events are closures scheduled at absolute instants; popping an event
//! advances the engine clock to its timestamp.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

type EventFn = Box<dyn FnOnce(&mut Engine)>;

struct Event {
    at: SimTime,
    seq: u64,
    run: EventFn,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert to pop the earliest event, with
        // sequence number as the FIFO tie-breaker.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single-threaded discrete-event simulator.
///
/// # Examples
///
/// ```
/// use portus_sim::{Engine, SimDuration};
///
/// let mut eng = Engine::new();
/// eng.schedule_in(SimDuration::from_secs(2), |e| {
///     e.schedule_in(SimDuration::from_secs(1), |_| {});
/// });
/// eng.run();
/// assert_eq!(eng.now().as_secs_f64(), 3.0);
/// ```
#[derive(Default)]
pub struct Engine {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Event>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl Engine {
    /// Creates an engine at the timeline origin with no pending events.
    pub fn new() -> Self {
        Engine::default()
    }

    /// The engine's current instant (the timestamp of the last event run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `f` to run at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the engine's current instant
    /// (events cannot run in the past).
    pub fn schedule_at<F: FnOnce(&mut Engine) + 'static>(&mut self, at: SimTime, f: F) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < {}",
            self.now
        );
        self.seq += 1;
        self.heap.push(Event {
            at,
            seq: self.seq,
            run: Box::new(f),
        });
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_in<F: FnOnce(&mut Engine) + 'static>(&mut self, delay: SimDuration, f: F) {
        self.schedule_at(self.now + delay, f);
    }

    /// Runs a single event if one is pending; returns whether it did.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                self.now = ev.at;
                (ev.run)(self);
                true
            }
            None => false,
        }
    }

    /// Runs events until the heap is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= until`, leaving later events
    /// pending, and advances the clock to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.heap.peek() {
            if ev.at > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        for (tag, at_ms) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let order = order.clone();
            eng.schedule_at(SimTime::ZERO + SimDuration::from_millis(at_ms), move |_| {
                order.borrow_mut().push(tag);
            });
        }
        eng.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(eng.now().as_millis_total(), 30);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        for tag in ["first", "second", "third"] {
            let order = order.clone();
            eng.schedule_at(SimTime::ZERO, move |_| order.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut eng = Engine::new();
        let h = hits.clone();
        eng.schedule_in(SimDuration::from_secs(1), move |e| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            e.schedule_in(SimDuration::from_secs(1), move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        eng.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(eng.now().as_secs_f64(), 2.0);
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut eng = Engine::new();
        eng.schedule_in(SimDuration::from_secs(1), |_| {});
        eng.schedule_in(SimDuration::from_secs(5), |_| {});
        eng.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now().as_secs_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(SimDuration::from_secs(1), |e| {
            e.schedule_at(SimTime::ZERO, |_| {});
        });
        eng.run();
    }

    trait MillisTotal {
        fn as_millis_total(&self) -> u64;
    }
    impl MillisTotal for SimTime {
        fn as_millis_total(&self) -> u64 {
            self.as_nanos() / 1_000_000
        }
    }
}
