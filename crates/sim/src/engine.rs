//! The discrete-event engine, built on the [`PlanQueue`].
//!
//! The end-to-end experiments (Figs. 14–16) and the multi-daemon fleet
//! harness interleave compute phases, asynchronous checkpoint pulls,
//! and policy decisions on one virtual timeline. [`Engine`] provides
//! the event loop: events are closures scheduled at absolute instants
//! on a [`PlanQueue`]; popping an event advances the engine clock to
//! its timestamp. Ordering is deterministic — `(instant, plan id)` —
//! so two runs that make the same schedule calls execute events in
//! exactly the same order.
//!
//! Beyond the classic loop the engine carries the run-wide services an
//! ixa-style simulation needs:
//!
//! * **seeded randomness** ([`Engine::with_seed`], [`Engine::rng`],
//!   [`Engine::fork_rng`]) so stochastic runs replay bit-for-bit;
//! * **per-actor local time** ([`Engine::add_actor`],
//!   [`Engine::advance_actor`]): each daemon or training client keeps
//!   its own cursor on the shared timeline, so operations running on
//!   *different* actors overlap (both finish at `max`, not `sum`, of
//!   their durations) while work charged on one actor serializes;
//! * **periodic progress reports** ([`Engine::report_every`],
//!   [`Engine::progress_reports`]) sampling events-run and queue depth
//!   at fixed virtual intervals;
//! * **cancellation** ([`Engine::cancel`]) for timeout-style plans
//!   that are usually superseded.

use crate::plan::{PlanId, PlanQueue};
use crate::rng::SimRng;
use crate::{SimDuration, SimTime};

type EventFn = Box<dyn FnOnce(&mut Engine)>;

/// Identifies one actor registered with [`Engine::add_actor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(usize);

impl ActorId {
    /// The actor's registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

struct Actor {
    name: String,
    local_now: SimTime,
}

/// One periodic progress sample (see [`Engine::report_every`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressReport {
    /// The virtual instant of the sample (a multiple of the report
    /// interval).
    pub at: SimTime,
    /// Events executed since the run began.
    pub events_run: u64,
    /// Plans still pending at the sample instant.
    pub pending: usize,
}

/// A single-threaded discrete-event simulator.
///
/// # Examples
///
/// ```
/// use portus_sim::{Engine, SimDuration};
///
/// let mut eng = Engine::new();
/// eng.schedule_in(SimDuration::from_secs(2), |e| {
///     e.schedule_in(SimDuration::from_secs(1), |_| {});
/// });
/// eng.run();
/// assert_eq!(eng.now().as_secs_f64(), 3.0);
/// ```
pub struct Engine {
    now: SimTime,
    queue: PlanQueue<EventFn>,
    rng: SimRng,
    actors: Vec<Actor>,
    events_run: u64,
    report_every: Option<SimDuration>,
    next_report_at: SimTime,
    reports: Vec<ProgressReport>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_seed(0)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_run", &self.events_run)
            .field("actors", &self.actors.len())
            .finish()
    }
}

impl Engine {
    /// Creates an engine at the timeline origin with no pending events
    /// and seed 0.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Creates an engine whose random stream is seeded with `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: PlanQueue::new(),
            rng: SimRng::new(seed),
            actors: Vec::new(),
            events_run: 0,
            report_every: None,
            next_report_at: SimTime::ZERO,
            reports: Vec::new(),
        }
    }

    /// The engine's current instant (the timestamp of the last event run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events executed so far.
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// The engine's seeded random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// An independent child stream keyed by `label` (see
    /// [`SimRng::fork`]); use one per actor so draws never interleave.
    pub fn fork_rng(&self, label: u64) -> SimRng {
        self.rng.fork(label)
    }

    // --- actors -----------------------------------------------------

    /// Registers an actor with its own local-time cursor (starting at
    /// the origin) and returns its id.
    pub fn add_actor(&mut self, name: &str) -> ActorId {
        self.actors.push(Actor {
            name: name.to_string(),
            local_now: SimTime::ZERO,
        });
        ActorId(self.actors.len() - 1)
    }

    /// The diagnostic name given at registration.
    pub fn actor_name(&self, actor: ActorId) -> &str {
        &self.actors[actor.0].name
    }

    /// The actor's local-time cursor: when its last charged operation
    /// completes.
    pub fn actor_now(&self, actor: ActorId) -> SimTime {
        self.actors[actor.0].local_now
    }

    /// Charges `d` of work on `actor`'s local timeline, starting no
    /// earlier than the engine's current instant, and returns the
    /// completion instant. Work charged on one actor serializes;
    /// work on different actors overlaps.
    pub fn advance_actor(&mut self, actor: ActorId, d: SimDuration) -> SimTime {
        let a = &mut self.actors[actor.0];
        a.local_now = a.local_now.max(self.now) + d;
        a.local_now
    }

    /// Moves `actor`'s cursor to `t` if `t` is later (e.g. after a
    /// grant on a shared [`crate::Resource`] ends at `t`). Returns the
    /// cursor.
    pub fn advance_actor_to(&mut self, actor: ActorId, t: SimTime) -> SimTime {
        let a = &mut self.actors[actor.0];
        a.local_now = a.local_now.max(t);
        a.local_now
    }

    // --- progress reports -------------------------------------------

    /// Samples a [`ProgressReport`] every `every` of virtual time while
    /// the run executes (the first sample lands at `every`).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn report_every(&mut self, every: SimDuration) {
        assert!(!every.is_zero(), "progress interval must be positive");
        self.report_every = Some(every);
        self.next_report_at = self.now + every;
    }

    /// The progress samples collected so far.
    pub fn progress_reports(&self) -> &[ProgressReport] {
        &self.reports
    }

    fn emit_reports_up_to(&mut self, t: SimTime) {
        let Some(every) = self.report_every else {
            return;
        };
        while self.next_report_at <= t {
            self.reports.push(ProgressReport {
                at: self.next_report_at,
                events_run: self.events_run,
                pending: self.queue.len(),
            });
            self.next_report_at += every;
        }
    }

    // --- scheduling -------------------------------------------------

    /// Schedules `f` to run at absolute instant `at`; returns the plan
    /// id (usable with [`Engine::cancel`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the engine's current instant
    /// (events cannot run in the past).
    pub fn schedule_at<F: FnOnce(&mut Engine) + 'static>(&mut self, at: SimTime, f: F) -> PlanId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < {}",
            self.now
        );
        self.queue.add(at, Box::new(f))
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_in<F: FnOnce(&mut Engine) + 'static>(
        &mut self,
        delay: SimDuration,
        f: F,
    ) -> PlanId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancels a pending plan; returns whether it was still pending.
    pub fn cancel(&mut self, id: PlanId) -> bool {
        self.queue.cancel(id).is_some()
    }

    // --- the loop ---------------------------------------------------

    /// Runs a single event if one is pending; returns whether it did.
    pub fn step(&mut self) -> bool {
        let Some((at, _)) = self.queue.peek() else {
            return false;
        };
        self.emit_reports_up_to(at);
        let (at, _, run) = self.queue.pop().expect("peeked plan vanished");
        self.now = at;
        self.events_run += 1;
        run(self);
        true
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= until`, leaving later events
    /// pending, and advances the clock to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((at, _)) = self.queue.peek() {
            if at > until {
                break;
            }
            self.step();
        }
        self.emit_reports_up_to(until);
        self.now = self.now.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        for (tag, at_ms) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let order = order.clone();
            eng.schedule_at(SimTime::ZERO + SimDuration::from_millis(at_ms), move |_| {
                order.borrow_mut().push(tag);
            });
        }
        eng.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(eng.now().as_nanos(), 30_000_000);
        assert_eq!(eng.events_run(), 3);
    }

    #[test]
    fn same_time_events_pop_in_plan_id_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        for tag in ["first", "second", "third"] {
            let order = order.clone();
            eng.schedule_at(SimTime::ZERO, move |_| order.borrow_mut().push(tag));
        }
        eng.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut eng = Engine::new();
        let h = hits.clone();
        eng.schedule_in(SimDuration::from_secs(1), move |e| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            e.schedule_in(SimDuration::from_secs(1), move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        eng.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(eng.now().as_secs_f64(), 2.0);
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut eng = Engine::new();
        eng.schedule_in(SimDuration::from_secs(1), |_| {});
        eng.schedule_in(SimDuration::from_secs(5), |_| {});
        eng.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now().as_secs_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(SimDuration::from_secs(1), |e| {
            e.schedule_at(SimTime::ZERO, |_| {});
        });
        eng.run();
    }

    #[test]
    fn cancelled_plans_do_not_run() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut eng = Engine::new();
        let h = hits.clone();
        let timeout = eng.schedule_in(SimDuration::from_secs(10), move |_| {
            *h.borrow_mut() += 1;
        });
        assert!(eng.cancel(timeout));
        assert!(!eng.cancel(timeout), "second cancel is a no-op");
        eng.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(
            eng.now(),
            SimTime::ZERO,
            "cancelled plan must not drag the clock"
        );
    }

    #[test]
    fn actors_keep_local_time() {
        let mut eng = Engine::new();
        let a = eng.add_actor("daemon-0");
        let b = eng.add_actor("daemon-1");
        assert_eq!(eng.actor_name(a), "daemon-0");
        // Both actors charge 5s of work starting at t=0: they overlap.
        let end_a = eng.advance_actor(a, SimDuration::from_secs(5));
        let end_b = eng.advance_actor(b, SimDuration::from_secs(5));
        assert_eq!(end_a, end_b);
        assert_eq!(end_a.as_secs_f64(), 5.0);
        // More work on the same actor serializes after its cursor.
        let end_a2 = eng.advance_actor(a, SimDuration::from_secs(1));
        assert_eq!(end_a2.as_secs_f64(), 6.0);
        assert_eq!(eng.actor_now(b).as_secs_f64(), 5.0);
        // advance_actor_to is monotone.
        eng.advance_actor_to(b, SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(eng.actor_now(b).as_secs_f64(), 5.0);
    }

    #[test]
    fn actor_charges_start_no_earlier_than_engine_now() {
        let mut eng = Engine::new();
        let a = eng.add_actor("client");
        eng.schedule_in(SimDuration::from_secs(3), |_| {});
        eng.run();
        // The actor was idle until t=3; a charge starts there.
        let end = eng.advance_actor(a, SimDuration::from_secs(1));
        assert_eq!(end.as_secs_f64(), 4.0);
    }

    #[test]
    fn seeded_rng_replays() {
        let mut a = Engine::with_seed(11);
        let mut b = Engine::with_seed(11);
        let draws_a: Vec<u64> = (0..5).map(|_| a.rng().next_u64()).collect();
        let draws_b: Vec<u64> = (0..5).map(|_| b.rng().next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        let mut fork = a.fork_rng(1);
        assert_ne!(fork.next_u64(), a.rng().next_u64());
    }

    #[test]
    fn progress_reports_sample_fixed_intervals() {
        let mut eng = Engine::new();
        eng.report_every(SimDuration::from_secs(1));
        for s in [1u64, 2, 5] {
            eng.schedule_at(
                SimTime::ZERO + SimDuration::from_millis(s * 1000 + 500),
                |_| {},
            );
        }
        eng.run();
        let reports = eng.progress_reports();
        // Samples at 1..=5s (the last event at 5.5s crosses the 5s mark).
        assert_eq!(reports.len(), 5);
        assert_eq!(reports[0].at.as_secs_f64(), 1.0);
        assert_eq!(reports[0].events_run, 0);
        assert_eq!(reports[0].pending, 3);
        assert_eq!(reports[4].at.as_secs_f64(), 5.0);
        assert_eq!(reports[4].events_run, 2);
        assert_eq!(reports[4].pending, 1);
    }
}
