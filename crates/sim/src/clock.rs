//! A shared, monotonically advancing virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimDuration, SimTime};

/// A thread-safe virtual clock.
///
/// The clock only moves forward. Device models call [`Clock::advance_by`]
/// (or [`Clock::advance_to`]) when they charge virtual time for an
/// operation; harness code reads [`Clock::now`] to timestamp results.
///
/// Cloning a `Clock` produces a handle to the *same* timeline.
///
/// # Examples
///
/// ```
/// use portus_sim::{Clock, SimDuration};
///
/// let clock = Clock::new();
/// clock.advance_by(SimDuration::from_millis(3));
/// assert_eq!(clock.now().as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_nanos: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at the timeline origin.
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_nanos.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance_by(&self, d: SimDuration) -> SimTime {
        let nanos = self.now_nanos.fetch_add(d.as_nanos(), Ordering::SeqCst) + d.as_nanos();
        SimTime::from_nanos(nanos)
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged. Returns the (possibly unchanged) current instant.
    ///
    /// This is the primitive used when an operation completes at an
    /// absolute instant computed from a shared resource's queue.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.now_nanos.fetch_max(t.as_nanos(), Ordering::SeqCst);
        self.now()
    }

    /// Resets the clock to the origin. Only intended for test harnesses
    /// that reuse a context between runs.
    pub fn reset(&self) {
        self.now_nanos.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads_back() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_by(SimDuration::from_micros(7));
        assert_eq!(c.now().as_nanos(), 7_000);
    }

    #[test]
    fn clones_share_a_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance_by(SimDuration::from_secs(1));
        assert_eq!(b.now(), a.now());
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance_by(SimDuration::from_secs(5));
        c.advance_to(SimTime::from_nanos(1)); // in the past: no-op
        assert_eq!(c.now(), SimTime::ZERO + SimDuration::from_secs(5));
        c.advance_to(SimTime::from_nanos(6_000_000_000));
        assert_eq!(c.now().as_secs_f64(), 6.0);
    }

    #[test]
    fn reset_returns_to_origin() {
        let c = Clock::new();
        c.advance_by(SimDuration::from_secs(2));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = Clock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance_by(SimDuration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(c.now().as_nanos(), 4000);
    }
}
