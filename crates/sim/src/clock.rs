//! A shared, monotonically advancing virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimDuration, SimTime};

/// The timeline would pass `u64::MAX` nanoseconds (~584 virtual years).
///
/// Returned by [`Clock::try_advance_by`]; the clock itself saturates at
/// the maximum instant instead of wrapping backwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOverflow {
    /// The instant the clock held when the overflowing charge arrived.
    pub at: SimTime,
    /// The charge that could not be represented.
    pub charge: SimDuration,
}

impl std::fmt::Display for ClockOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "virtual clock overflow: {} + {} exceeds the timeline",
            self.at, self.charge
        )
    }
}

impl std::error::Error for ClockOverflow {}

/// A thread-safe virtual clock.
///
/// The clock only moves forward. Device models call [`Clock::advance_by`]
/// (or [`Clock::advance_to`]) when they charge virtual time for an
/// operation; harness code reads [`Clock::now`] to timestamp results.
///
/// Cloning a `Clock` produces a handle to the *same* timeline.
///
/// Concurrent *real threads* charging one clock accumulate additively —
/// that is the documented threaded-plane deviation (DESIGN.md §9/§15);
/// overlap-correct timing lives in the [`crate::Engine`] event core,
/// where per-actor cursors give concurrent operations max-of-completion
/// semantics.
///
/// # Examples
///
/// ```
/// use portus_sim::{Clock, SimDuration};
///
/// let clock = Clock::new();
/// clock.advance_by(SimDuration::from_millis(3));
/// assert_eq!(clock.now().as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_nanos: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at the timeline origin.
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_nanos.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    ///
    /// A charge that would push the timeline past `u64::MAX` nanoseconds
    /// saturates at the maximum instant (it never wraps backwards) and
    /// trips a debug assertion — a cost model emitting ~584 virtual
    /// years is a bug upstream. Use [`Clock::try_advance_by`] to handle
    /// the overflow as a value instead.
    pub fn advance_by(&self, d: SimDuration) -> SimTime {
        match self.try_advance_by(d) {
            Ok(t) => t,
            Err(e) => {
                debug_assert!(false, "{e}");
                SimTime::from_nanos(u64::MAX)
            }
        }
    }

    /// Advances the clock by `d`, saturating at the maximum instant;
    /// reports an overflowing charge as a typed [`ClockOverflow`]
    /// instead of wrapping the timeline backwards.
    pub fn try_advance_by(&self, d: SimDuration) -> Result<SimTime, ClockOverflow> {
        let prev = self
            .now_nanos
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                Some(n.saturating_add(d.as_nanos()))
            })
            .expect("fetch_update closure never returns None");
        match prev.checked_add(d.as_nanos()) {
            Some(n) => Ok(SimTime::from_nanos(n)),
            None => Err(ClockOverflow {
                at: SimTime::from_nanos(prev),
                charge: d,
            }),
        }
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged. Returns the (possibly unchanged) current instant.
    ///
    /// This is the primitive used when an operation completes at an
    /// absolute instant computed from a shared resource's queue.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.now_nanos.fetch_max(t.as_nanos(), Ordering::SeqCst);
        self.now()
    }

    /// Number of live handles (clones) sharing this timeline.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.now_nanos)
    }

    /// Resets the clock to the origin. Only intended for test harnesses
    /// that reuse a context between runs.
    ///
    /// # Contract
    ///
    /// The caller must hold the *only* handle to the timeline: daemon
    /// workers, repackers, or clients still holding clones would observe
    /// time rewinding under their in-flight spans, producing negative
    /// durations and corrupt traces. A debug assertion enforces this;
    /// use [`Clock::try_reset`] to make the check a runtime decision.
    pub fn reset(&self) {
        debug_assert_eq!(
            self.handles(),
            1,
            "Clock::reset while {} other handle(s) share the timeline — \
             join daemon/repacker threads (drop their SimContext clones) \
             before reusing a harness clock",
            self.handles() - 1
        );
        self.now_nanos.store(0, Ordering::SeqCst);
    }

    /// Resets the clock to the origin only when this is the sole handle
    /// to the timeline; returns whether the reset happened.
    pub fn try_reset(&self) -> bool {
        if self.handles() == 1 {
            self.now_nanos.store(0, Ordering::SeqCst);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads_back() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_by(SimDuration::from_micros(7));
        assert_eq!(c.now().as_nanos(), 7_000);
    }

    #[test]
    fn clones_share_a_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance_by(SimDuration::from_secs(1));
        assert_eq!(b.now(), a.now());
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance_by(SimDuration::from_secs(5));
        c.advance_to(SimTime::from_nanos(1)); // in the past: no-op
        assert_eq!(c.now(), SimTime::ZERO + SimDuration::from_secs(5));
        c.advance_to(SimTime::from_nanos(6_000_000_000));
        assert_eq!(c.now().as_secs_f64(), 6.0);
    }

    #[test]
    fn reset_returns_to_origin() {
        let c = Clock::new();
        c.advance_by(SimDuration::from_secs(2));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn try_reset_refuses_shared_timelines() {
        let a = Clock::new();
        a.advance_by(SimDuration::from_secs(1));
        let b = a.clone();
        assert_eq!(a.handles(), 2);
        assert!(!a.try_reset(), "live clone must block the rewind");
        assert_eq!(b.now().as_secs_f64(), 1.0);
        drop(b);
        assert!(a.try_reset());
        assert_eq!(a.now(), SimTime::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "other handle(s) share the timeline")]
    fn reset_with_live_clones_trips_the_debug_assertion() {
        let a = Clock::new();
        let _b = a.clone();
        a.reset();
    }

    #[test]
    fn overflow_saturates_instead_of_wrapping() {
        let c = Clock::new();
        c.advance_by(SimDuration::from_nanos(u64::MAX - 10));
        let err = c
            .try_advance_by(SimDuration::from_nanos(100))
            .expect_err("charge past u64::MAX must be reported");
        assert_eq!(err.at.as_nanos(), u64::MAX - 10);
        assert_eq!(err.charge, SimDuration::from_nanos(100));
        // The timeline pinned at the maximum instant — never backwards.
        assert_eq!(c.now().as_nanos(), u64::MAX);
        assert!(c.try_advance_by(SimDuration::from_nanos(1)).is_err());
        assert_eq!(c.now().as_nanos(), u64::MAX);
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "virtual clock overflow")]
    fn advance_by_overflow_trips_the_debug_assertion() {
        let c = Clock::new();
        c.advance_by(SimDuration::from_nanos(u64::MAX));
        c.advance_by(SimDuration::from_nanos(1));
    }

    /// Pins the *threaded-plane deviation* (DESIGN.md §9): real threads
    /// charging one shared clock accumulate additively with no lost
    /// updates. Overlap-correct concurrent timing is the Engine event
    /// core's job (see `overlapping_ops` tests there and in
    /// `tests/event_queue.rs`).
    #[test]
    fn concurrent_threaded_advances_accumulate_additively() {
        let c = Clock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance_by(SimDuration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(c.now().as_nanos(), 4000);
    }
}
