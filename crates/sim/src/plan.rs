//! The discrete-event plan queue.
//!
//! A `PlanQueue` holds *plans*: payloads scheduled at absolute virtual
//! instants. Popping always yields the earliest plan; two plans at the
//! same instant pop in the order they were added (the monotone
//! [`PlanId`] is the tie-breaker), so execution order is a pure
//! function of the schedule calls and never of heap internals, hash
//! seeds, or thread interleavings. This is the ordering contract the
//! deterministic-replay suite pins.
//!
//! Plans can be cancelled by id ([`PlanQueue::cancel`]); a cancelled
//! plan's payload is returned to the caller and the queue entry is
//! lazily skipped on pop, so cancellation is O(1).

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};

use crate::SimTime;

/// Identifies one scheduled plan. Ids are handed out monotonically by a
/// [`PlanQueue`] and double as the deterministic tie-breaker between
/// plans scheduled at the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanId(u64);

impl PlanId {
    /// The raw monotone counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan#{}", self.0)
    }
}

/// A heap entry: `(instant, id)` with inverted ordering so the
/// `BinaryHeap` max-heap pops the earliest instant, lowest id first.
#[derive(Debug, PartialEq, Eq)]
struct Slot {
    at: SimTime,
    id: PlanId,
}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A queue of payloads scheduled at absolute virtual instants with
/// deterministic `(instant, plan id)` ordering.
///
/// # Examples
///
/// ```
/// use portus_sim::{PlanQueue, SimTime};
///
/// let mut q = PlanQueue::new();
/// q.add(SimTime::from_nanos(20), "late");
/// q.add(SimTime::from_nanos(10), "early");
/// let (at, _, data) = q.pop().unwrap();
/// assert_eq!((at.as_nanos(), data), (10, "early"));
/// ```
#[derive(Debug)]
pub struct PlanQueue<T> {
    heap: BinaryHeap<Slot>,
    data: HashMap<u64, T>,
    next_id: u64,
}

impl<T> Default for PlanQueue<T> {
    fn default() -> Self {
        PlanQueue {
            heap: BinaryHeap::new(),
            data: HashMap::new(),
            next_id: 0,
        }
    }
}

impl<T> PlanQueue<T> {
    /// An empty queue; the first plan gets id 0.
    pub fn new() -> Self {
        PlanQueue::default()
    }

    /// Schedules `data` at instant `at` and returns its [`PlanId`].
    pub fn add(&mut self, at: SimTime, data: T) -> PlanId {
        let id = PlanId(self.next_id);
        self.next_id += 1;
        self.heap.push(Slot { at, id });
        self.data.insert(id.0, data);
        id
    }

    /// Cancels the plan with `id`, returning its payload if it was
    /// still pending. The heap entry is skipped lazily on pop.
    pub fn cancel(&mut self, id: PlanId) -> Option<T> {
        self.data.remove(&id.0)
    }

    /// The instant and id of the next live plan without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, PlanId)> {
        self.skip_cancelled();
        self.heap.peek().map(|s| (s.at, s.id))
    }

    /// Removes and returns the earliest live plan.
    pub fn pop(&mut self) -> Option<(SimTime, PlanId, T)> {
        self.skip_cancelled();
        let slot = self.heap.pop()?;
        let data = self
            .data
            .remove(&slot.id.0)
            .expect("skip_cancelled left a live heap head");
        Some((slot.at, slot.id, data))
    }

    /// Number of live (non-cancelled) plans.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no live plans remain.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops heap entries whose plan was cancelled so `peek`/`pop` see
    /// a live head.
    fn skip_cancelled(&mut self) {
        while let Some(slot) = self.heap.peek() {
            if self.data.contains_key(&slot.id.0) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_then_id_order() {
        let mut q = PlanQueue::new();
        let _b = q.add(t(20), "b");
        let _a = q.add(t(10), "a");
        let _c = q.add(t(20), "c"); // same instant as b, later id
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, d)| d)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ids_are_monotone() {
        let mut q = PlanQueue::new();
        let a = q.add(t(5), ());
        let b = q.add(t(1), ());
        assert!(b > a, "ids reflect schedule order, not instant order");
    }

    #[test]
    fn cancel_removes_a_pending_plan() {
        let mut q = PlanQueue::new();
        let a = q.add(t(10), "a");
        let _b = q.add(t(20), "b");
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        let (at, _, d) = q.pop().unwrap();
        assert_eq!((at, d), (t(20), "b"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = PlanQueue::new();
        let a = q.add(t(1), "a");
        q.add(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek().map(|(at, _)| at), Some(t(2)));
    }

    #[test]
    fn interleaved_adds_and_pops_stay_ordered() {
        let mut q = PlanQueue::new();
        q.add(t(30), 30);
        q.add(t(10), 10);
        let (at, _, d) = q.pop().unwrap();
        assert_eq!((at, d), (t(10), 10));
        q.add(t(20), 20);
        let (at, _, d) = q.pop().unwrap();
        assert_eq!((at, d), (t(20), 20));
        let (at, _, d) = q.pop().unwrap();
        assert_eq!((at, d), (t(30), 30));
        assert_eq!(q.pop().map(|(_, _, d)| d), None);
    }
}
