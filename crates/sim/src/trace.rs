//! Per-request spans on the virtual clock and Chrome trace export.
//!
//! The datapath counters ([`crate::Stats`]) say *how much* work was
//! done; spans say *where the virtual time went*. Every stage of a
//! checkpoint/delta/restore request (dispatch wait, validation, WQE
//! build, doorbell post, completion drain per retry round, persist,
//! checksum, header flip) records a [`SpanRecord`] against the shared
//! [`crate::Clock`] — never the host wall clock, so two replays of the
//! same deterministic run produce byte-identical traces.
//!
//! Recording is off by default ([`Tracer::enable`] turns it on), so
//! concurrent tests sharing a context pay nothing. The collected spans
//! export as Chrome trace-event JSON ([`Tracer::to_chrome_trace`]) and
//! render as a timeline in `chrome://tracing` or Perfetto; any other
//! timeline (e.g. a cluster run's busy/idle segments) can reuse the
//! same exporter through [`TraceEvent`] + [`chrome_trace_json`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// Which client-visible operation a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceOp {
    /// A full `DO_CHECKPOINT` pull.
    Checkpoint,
    /// An incremental checkpoint (dirty pulls + carry-over copies).
    DeltaCheckpoint,
    /// A restore push.
    Restore,
    /// A space-management repack pass (not a client request; `req_id`
    /// is the daemon's pass counter).
    Repack,
}

impl TraceOp {
    /// Stable lowercase name (used in trace categories and snapshots).
    pub fn name(self) -> &'static str {
        match self {
            TraceOp::Checkpoint => "checkpoint",
            TraceOp::DeltaCheckpoint => "delta-checkpoint",
            TraceOp::Restore => "restore",
            TraceOp::Repack => "repack",
        }
    }
}

impl std::fmt::Display for TraceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage of a request's datapath, in rough execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Client-side round trip: request sent → reply demultiplexed.
    Rpc,
    /// Queued on the daemon's dispatch pool, waiting for a worker.
    DispatchWait,
    /// Session/structure validation against the persistent index.
    Validate,
    /// Building tensor verbs and coalescing them into WQE runs.
    WqeBuild,
    /// Posting one doorbell batch of WQEs (the fabric transfer itself
    /// charges the clock here — the in-process fabric completes
    /// eagerly at post time).
    DoorbellPost,
    /// Draining the completion queue for one posting round. The drain
    /// charges no virtual time of its own; the span is derived from the
    /// fabric completions' own start/end instants.
    CqDrain,
    /// Exponential backoff charged before a retry round.
    RetryBackoff,
    /// Device-local carry-over copies of clean tensors (delta only).
    CarryCopy,
    /// Flush + fence of the pulled bytes.
    Persist,
    /// Checksum read-back of the slot.
    Checksum,
    /// Durable slot-header flip to `Done`.
    HeaderFlip,
    /// Post-seal dedup conversion: chunking the sealed region into
    /// content-addressed extents and publishing the extent map
    /// (dedup-configured daemons only).
    Dedup,
    /// One space-management repack pass over the model table.
    Repack,
    /// Resolving a model name through the paged on-PMem catalog
    /// (learned-root predict + bounded page probe). Catalog-enabled
    /// daemons only; the DRAM ModelMap resolves in zero virtual time.
    CatalogLookup,
    /// The whole daemon-side operation, end to end.
    Total,
}

impl Stage {
    /// Stable lowercase name (used in trace events and snapshots).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Rpc => "rpc",
            Stage::DispatchWait => "dispatch-wait",
            Stage::Validate => "validate",
            Stage::WqeBuild => "wqe-build",
            Stage::DoorbellPost => "doorbell-post",
            Stage::CqDrain => "cq-drain",
            Stage::RetryBackoff => "retry-backoff",
            Stage::CarryCopy => "carry-copy",
            Stage::Persist => "persist",
            Stage::Checksum => "checksum",
            Stage::HeaderFlip => "header-flip",
            Stage::Dedup => "dedup",
            Stage::Repack => "repack",
            Stage::CatalogLookup => "catalog-lookup",
            Stage::Total => "total",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span: a stage of one request, bounded by two instants
/// on the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The request the span belongs to.
    pub req_id: u64,
    /// The operation in flight.
    pub op: TraceOp,
    /// Which stage of the operation.
    pub stage: Stage,
    /// The model being operated on.
    pub model: String,
    /// Stage start (virtual).
    pub start: SimTime,
    /// Stage end (virtual).
    pub end: SimTime,
    /// Retry round, for per-round stages (`0` = the initial posting).
    pub round: u32,
    /// NIC engine lane the span's verbs rode, for per-QP stages
    /// (`0` = the sole lane of an unstriped connection).
    #[serde(default)]
    pub lane: u32,
}

impl SpanRecord {
    /// The span's width on the virtual timeline.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A renderable timeline event for [`chrome_trace_json`] — the
/// op-agnostic shape spans and other timelines (cluster busy/idle
/// segments) convert into before export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (the box label in the timeline).
    pub name: String,
    /// Category string (filterable in the trace viewer).
    pub cat: String,
    /// Process lane.
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// Event start (virtual).
    pub start: SimTime,
    /// Event end (virtual).
    pub end: SimTime,
    /// Extra key/value arguments shown on selection.
    pub args: Vec<(String, String)>,
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `events` as Chrome trace-event JSON (the `traceEvents`
/// array format understood by `chrome://tracing` and Perfetto).
/// Timestamps are microseconds with nanosecond fractions, taken from
/// the virtual clock — the output is a pure function of the events, so
/// deterministic runs export byte-identical traces.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_ns = e.start.as_nanos();
        let dur_ns = e.end.saturating_since(e.start).as_nanos();
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":{},\"tid\":{}",
            escape_json(&e.name),
            escape_json(&e.cat),
            ts_ns / 1_000,
            ts_ns % 1_000,
            dur_ns / 1_000,
            dur_ns % 1_000,
            e.pid,
            e.tid,
        ));
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[derive(Debug, Default)]
struct TracerInner {
    enabled: AtomicBool,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Shared span recorder. Cloning shares the underlying buffer (like
/// [`crate::Stats`]); recording is a no-op until [`Tracer::enable`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Starts recording spans.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording spans (already recorded spans are kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Records one span. A no-op while the tracer is disabled.
    pub fn record(&self, span: SpanRecord) {
        if self.is_enabled() {
            self.inner.spans.lock().push(span);
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.spans.lock().len()
    }

    /// `true` when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.spans.lock().is_empty()
    }

    /// Discards all recorded spans (the enabled flag is untouched).
    pub fn clear(&self) {
        self.inner.spans.lock().clear();
    }

    /// All recorded spans, in a canonical deterministic order
    /// (by start, end, request, stage, round) independent of the thread
    /// interleaving that recorded them.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.spans.lock().clone();
        spans.sort_by(|a, b| {
            (a.start, a.end, a.req_id, a.op, a.stage, a.round, a.lane)
                .cmp(&(b.start, b.end, b.req_id, b.op, b.stage, b.round, b.lane))
        });
        spans
    }

    /// Exports the recorded spans as Chrome trace-event JSON. Each
    /// request gets its own thread lane (`tid = req_id`); stages are
    /// the events within the lane. Deterministic runs export
    /// byte-identical traces (spans are canonically sorted first).
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<TraceEvent> = self
            .spans()
            .iter()
            .map(|s| {
                let mut args = vec![
                    ("model".to_string(), s.model.clone()),
                    ("round".to_string(), s.round.to_string()),
                ];
                // Lane 0 is the only lane of an unstriped connection;
                // omitting it keeps single-QP exports byte-identical
                // to traces recorded before striping existed.
                if s.lane > 0 {
                    args.push(("lane".to_string(), s.lane.to_string()));
                }
                TraceEvent {
                    name: s.stage.name().to_string(),
                    cat: s.op.name().to_string(),
                    pid: 1,
                    tid: s.req_id,
                    start: s.start,
                    end: s.end,
                    args,
                }
            })
            .collect();
        chrome_trace_json(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(req: u64, stage: Stage, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            req_id: req,
            op: TraceOp::Checkpoint,
            stage,
            model: "m".to_string(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            round: 0,
            lane: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(span(1, Stage::Total, 0, 10));
        assert!(t.is_empty());
        t.enable();
        t.record(span(1, Stage::Total, 0, 10));
        assert_eq!(t.len(), 1);
        t.disable();
        t.record(span(2, Stage::Total, 10, 20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clones_share_the_span_buffer() {
        let a = Tracer::new();
        a.enable();
        let b = a.clone();
        b.record(span(1, Stage::Persist, 0, 5));
        assert_eq!(a.len(), 1);
        assert!(b.is_enabled());
    }

    #[test]
    fn spans_export_in_canonical_order() {
        let t = Tracer::new();
        t.enable();
        t.record(span(2, Stage::Persist, 50, 60));
        t.record(span(1, Stage::Total, 0, 100));
        t.record(span(1, Stage::Persist, 50, 60));
        let spans = t.spans();
        assert_eq!(spans[0].req_id, 1);
        assert_eq!(spans[0].stage, Stage::Total);
        assert_eq!(spans[1].req_id, 1);
        assert_eq!(spans[2].req_id, 2);
    }

    #[test]
    fn chrome_export_is_valid_and_deterministic() {
        let t = Tracer::new();
        t.enable();
        t.record(span(1, Stage::Total, 1_500, 4_500));
        t.record(span(1, Stage::Persist, 2_000, 3_000));
        let a = t.to_chrome_trace();
        let b = t.to_chrome_trace();
        assert_eq!(a, b, "export must be a pure function of the spans");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ts\":1.500"));
        assert!(a.contains("\"dur\":3.000"));
        assert!(a.contains("\"tid\":1"));
    }

    #[test]
    fn lane_arg_appears_only_on_striped_spans() {
        let t = Tracer::new();
        t.enable();
        t.record(span(1, Stage::DoorbellPost, 0, 10));
        let mut striped = span(1, Stage::DoorbellPost, 10, 20);
        striped.lane = 3;
        t.record(striped);
        let json = t.to_chrome_trace();
        assert_eq!(json.matches("\"lane\":\"3\"").count(), 1);
        assert!(
            !json.contains("\"lane\":\"0\""),
            "lane 0 must stay implicit"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        let events = [TraceEvent {
            name: "a\"b\\c\n".to_string(),
            cat: "t".to_string(),
            pid: 1,
            tid: 1,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(1),
            args: vec![("k\"".to_string(), "v\t".to_string())],
        }];
        let s = chrome_trace_json(&events);
        assert!(s.contains("a\\\"b\\\\c\\n"));
        assert!(s.contains("\"k\\\"\":\"v\\t\""));
    }

    #[test]
    fn span_duration_saturates() {
        let s = span(1, Stage::Total, 10, 5);
        assert_eq!(s.duration(), SimDuration::ZERO);
    }
}
