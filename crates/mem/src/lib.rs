//! # portus-mem
//!
//! Simulated byte-addressable memories: [`MemorySegment`] (owned or
//! deterministic-synthetic byte ranges), device-tagged shared [`Buffer`]s,
//! a [`GpuDevice`] that allocates HBM and performs `cudaMemcpy`-style
//! PCIe transfers, and [`HostMemory`] for node DRAM.
//!
//! The [`portus_sim::MemoryKind`] tag carried by every buffer is what
//! lets the RDMA layer apply the GPU BAR read cap (paper §V-B) exactly
//! where the real hardware would.
//!
//! # Examples
//!
//! ```
//! use portus_mem::GpuDevice;
//! use portus_sim::SimContext;
//!
//! let ctx = SimContext::icdcs24();
//! let gpu = GpuDevice::new(ctx, 0, 16 << 30);
//! let weights = gpu.alloc_synthetic(8 << 20, 0xC0FFEE)?;
//! assert_eq!(weights.checksum(), weights.checksum()); // deterministic
//! # Ok::<(), portus_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod error;
mod gpu;
mod host;
mod segment;

pub use buffer::{Buffer, BufferId};
pub use error::{MemError, MemResult};
pub use gpu::GpuDevice;
pub use host::HostMemory;
pub use segment::{Backing, MemorySegment};
