//! Simulated GPU device memory.
//!
//! A [`GpuDevice`] stands in for one V100/A40: it hands out HBM buffers,
//! performs `cudaMemcpy`-style transfers to/from host memory (charging
//! PCIe time on the shared virtual clock), and tracks allocation totals.
//! The BAR read cap itself is applied by the RDMA layer via the
//! [`portus_sim::MemoryKind::GpuHbm`] tag on the buffers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use portus_sim::{MemoryKind, SimContext, SimDuration};

use crate::{Buffer, MemError, MemResult, MemorySegment};

/// One simulated GPU.
///
/// # Examples
///
/// ```
/// use portus_mem::GpuDevice;
/// use portus_sim::SimContext;
///
/// let ctx = SimContext::icdcs24();
/// let gpu = GpuDevice::new(ctx.clone(), 0, 16 << 30);
/// let buf = gpu.alloc(1 << 20)?;
/// assert_eq!(buf.len(), 1 << 20);
/// # Ok::<(), portus_mem::MemError>(())
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    ctx: SimContext,
    index: u32,
    capacity: u64,
    allocated: AtomicU64,
}

impl GpuDevice {
    /// Creates GPU `index` with `capacity` bytes of HBM.
    pub fn new(ctx: SimContext, index: u32, capacity: u64) -> Arc<GpuDevice> {
        Arc::new(GpuDevice {
            ctx,
            index,
            capacity,
            allocated: AtomicU64::new(0),
        })
    }

    /// The device index (as in `cuda:0`).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total HBM capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    fn reserve(&self, len: u64) -> MemResult<()> {
        let mut cur = self.allocated.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(len).ok_or(MemError::DeviceFull {
                requested: len,
                free: 0,
            })?;
            if next > self.capacity {
                return Err(MemError::DeviceFull {
                    requested: len,
                    free: self.capacity - cur,
                });
            }
            match self.allocated.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Allocates a zero-filled device buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::DeviceFull`] when HBM is exhausted.
    pub fn alloc(&self, len: u64) -> MemResult<Arc<Buffer>> {
        self.reserve(len)?;
        Ok(Buffer::new(MemoryKind::GpuHbm, MemorySegment::zeroed(len)))
    }

    /// Allocates a device buffer with deterministic synthetic content
    /// (O(1) host memory regardless of `len`). Used to stand in for
    /// pre-trained weights of arbitrarily large models.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::DeviceFull`] when HBM is exhausted.
    pub fn alloc_synthetic(&self, len: u64, seed: u64) -> MemResult<Arc<Buffer>> {
        self.reserve(len)?;
        Ok(Buffer::new(
            MemoryKind::GpuHbm,
            MemorySegment::synthetic(len, seed),
        ))
    }

    /// Releases accounting for a buffer allocated on this device.
    /// (The buffer's bytes free when the last `Arc` drops.)
    pub fn free(&self, buf: &Buffer) {
        debug_assert_eq!(buf.kind(), MemoryKind::GpuHbm);
        self.allocated.fetch_sub(buf.len(), Ordering::Relaxed);
    }

    /// `cudaMemcpy` device→host: copies `len` bytes and charges PCIe
    /// time. Returns the virtual duration charged.
    ///
    /// # Errors
    ///
    /// Returns bounds errors if either range is out of bounds, and
    /// [`MemError::WrongDevice`] if `src`/`dst` kinds are wrong.
    pub fn memcpy_d2h(
        &self,
        src: &Buffer,
        src_off: u64,
        dst: &Buffer,
        dst_off: u64,
        len: u64,
    ) -> MemResult<SimDuration> {
        if src.kind() != MemoryKind::GpuHbm || dst.kind() != MemoryKind::HostDram {
            return Err(MemError::WrongDevice);
        }
        copy_between(src, src_off, dst, dst_off, len)?;
        let d = self.ctx.model.cuda_memcpy_d2h(len);
        self.ctx.charge(d);
        self.ctx.stats.record_copy(len);
        Ok(d)
    }

    /// `cudaMemcpy` host→device: copies `len` bytes and charges PCIe
    /// time. Returns the virtual duration charged.
    ///
    /// # Errors
    ///
    /// Same as [`GpuDevice::memcpy_d2h`], with kinds reversed.
    pub fn memcpy_h2d(
        &self,
        src: &Buffer,
        src_off: u64,
        dst: &Buffer,
        dst_off: u64,
        len: u64,
    ) -> MemResult<SimDuration> {
        if src.kind() != MemoryKind::HostDram || dst.kind() != MemoryKind::GpuHbm {
            return Err(MemError::WrongDevice);
        }
        copy_between(src, src_off, dst, dst_off, len)?;
        let d = self.ctx.model.cuda_memcpy_h2d(len);
        self.ctx.charge(d);
        self.ctx.stats.record_copy(len);
        Ok(d)
    }
}

/// Chunked byte copy between two buffers.
pub(crate) fn copy_between(
    src: &Buffer,
    src_off: u64,
    dst: &Buffer,
    dst_off: u64,
    len: u64,
) -> MemResult<()> {
    let mut buf = [0u8; 64 * 1024];
    let mut done = 0u64;
    while done < len {
        let chunk = ((len - done) as usize).min(buf.len());
        src.read_at(src_off + done, &mut buf[..chunk])?;
        dst.write_at(dst_off + done, &buf[..chunk])?;
        done += chunk as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_and_ctx() -> (SimContext, Arc<GpuDevice>) {
        let ctx = SimContext::icdcs24();
        let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
        (ctx, gpu)
    }

    #[test]
    fn alloc_tracks_capacity() {
        let (_ctx, gpu) = gpu_and_ctx();
        let b = gpu.alloc(1 << 20).unwrap();
        assert_eq!(gpu.allocated(), 1 << 20);
        gpu.free(&b);
        assert_eq!(gpu.allocated(), 0);
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let (_ctx, gpu) = gpu_and_ctx();
        let err = gpu.alloc(2 << 30).unwrap_err();
        assert!(matches!(err, MemError::DeviceFull { .. }));
    }

    #[test]
    fn d2h_moves_bytes_and_charges_time() {
        let (ctx, gpu) = gpu_and_ctx();
        let dev = gpu.alloc_synthetic(1 << 20, 7).unwrap();
        let host = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(1 << 20));
        let before = ctx.clock.now();
        gpu.memcpy_d2h(&dev, 0, &host, 0, 1 << 20).unwrap();
        assert!(ctx.clock.now() > before, "must charge PCIe time");
        assert_eq!(dev.checksum(), host.checksum());
        assert_eq!(ctx.stats.snapshot().data_copies, 1);
    }

    #[test]
    fn h2d_rejects_wrong_kinds() {
        let (_ctx, gpu) = gpu_and_ctx();
        let dev = gpu.alloc(64).unwrap();
        let dev2 = gpu.alloc(64).unwrap();
        assert!(matches!(
            gpu.memcpy_h2d(&dev, 0, &dev2, 0, 64),
            Err(MemError::WrongDevice)
        ));
    }

    #[test]
    fn synthetic_alloc_counts_against_capacity() {
        let (_ctx, gpu) = gpu_and_ctx();
        gpu.alloc_synthetic(1 << 29, 1).unwrap();
        assert!(gpu.alloc(1 << 30).is_err());
    }
}
