//! Simulated host DRAM.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use portus_sim::{MemoryKind, SimContext, SimDuration};

use crate::gpu::copy_between;
use crate::{Buffer, MemError, MemResult, MemorySegment};

/// The DRAM of one node (compute or storage).
///
/// Hands out host buffers and performs DRAM-to-DRAM copies, charging
/// memcpy time on the shared clock. This is the staging area the
/// *baseline* checkpoint datapath is forced through (Fig. 3 steps 1–2) —
/// and the memory Portus's datapath conspicuously never touches.
#[derive(Debug)]
pub struct HostMemory {
    ctx: SimContext,
    capacity: u64,
    allocated: AtomicU64,
}

impl HostMemory {
    /// Creates a node DRAM pool of `capacity` bytes.
    pub fn new(ctx: SimContext, capacity: u64) -> Arc<HostMemory> {
        Arc::new(HostMemory {
            ctx,
            capacity,
            allocated: AtomicU64::new(0),
        })
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Allocates a zero-filled host buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::DeviceFull`] when DRAM is exhausted.
    pub fn alloc(&self, len: u64) -> MemResult<Arc<Buffer>> {
        let mut cur = self.allocated.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(len).ok_or(MemError::DeviceFull {
                requested: len,
                free: 0,
            })?;
            if next > self.capacity {
                return Err(MemError::DeviceFull {
                    requested: len,
                    free: self.capacity - cur,
                });
            }
            match self.allocated.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        Ok(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(len),
        ))
    }

    /// Releases accounting for a buffer allocated from this pool.
    pub fn free(&self, buf: &Buffer) {
        debug_assert_eq!(buf.kind(), MemoryKind::HostDram);
        self.allocated.fetch_sub(buf.len(), Ordering::Relaxed);
    }

    /// DRAM→DRAM memcpy charging copy time; returns the duration charged.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WrongDevice`] unless both buffers are host
    /// DRAM, and bounds errors from the segments.
    pub fn memcpy(
        &self,
        src: &Buffer,
        src_off: u64,
        dst: &Buffer,
        dst_off: u64,
        len: u64,
    ) -> MemResult<SimDuration> {
        if src.kind() != MemoryKind::HostDram || dst.kind() != MemoryKind::HostDram {
            return Err(MemError::WrongDevice);
        }
        copy_between(src, src_off, dst, dst_off, len)?;
        let d = self.ctx.model.dram_copy(len);
        self.ctx.charge(d);
        self.ctx.stats.record_copy(len);
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_accounting() {
        let ctx = SimContext::icdcs24();
        let dram = HostMemory::new(ctx, 1 << 20);
        let b = dram.alloc(1 << 19).unwrap();
        assert_eq!(dram.allocated(), 1 << 19);
        assert!(dram.alloc(1 << 20).is_err());
        dram.free(&b);
        assert_eq!(dram.allocated(), 0);
    }

    #[test]
    fn memcpy_moves_bytes() {
        let ctx = SimContext::icdcs24();
        let dram = HostMemory::new(ctx.clone(), 1 << 20);
        let a = dram.alloc(256).unwrap();
        let b = dram.alloc(256).unwrap();
        a.write_at(0, &[9u8; 256]).unwrap();
        dram.memcpy(&a, 0, &b, 0, 256).unwrap();
        assert_eq!(b.to_vec(), vec![9u8; 256]);
        assert!(ctx.clock.now().as_nanos() > 0);
    }
}
