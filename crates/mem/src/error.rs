//! Error types for memory operations.

use std::error::Error;
use std::fmt;

/// Result alias for memory operations.
pub type MemResult<T> = Result<T, MemError>;

/// Errors raised by the simulated memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The requested range falls outside the segment.
    OutOfBounds {
        /// Start offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Size of the segment.
        size: u64,
    },
    /// The backing is read-only (synthetic content).
    NotWritable,
    /// The device has insufficient free capacity.
    DeviceFull {
        /// Bytes requested.
        requested: u64,
        /// Bytes free.
        free: u64,
    },
    /// A transfer was attempted between the wrong device kinds.
    WrongDevice,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { offset, len, size } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds segment of {size} bytes"
            ),
            MemError::NotWritable => write!(f, "segment backing is read-only"),
            MemError::DeviceFull { requested, free } => {
                write!(f, "device full: requested {requested} bytes, {free} free")
            }
            MemError::WrongDevice => write!(f, "transfer endpoints have the wrong device kinds"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::OutOfBounds {
            offset: 4,
            len: 8,
            size: 10,
        };
        assert!(e.to_string().contains("offset 4"));
        assert!(!MemError::NotWritable.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
