//! Raw memory segments with owned or synthetic backing.

use std::fmt;

use crate::{MemError, MemResult};

/// Deterministic pseudo-random content generator (splitmix64 over 8-byte
/// blocks). Used by [`Backing::Synthetic`] so multi-gigabyte "tensors" can
/// be read byte-for-byte without being stored.
fn synthetic_block(seed: u64, block_index: u64) -> [u8; 8] {
    let mut z = seed ^ block_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z.to_le_bytes()
}

/// How a [`MemorySegment`] stores its bytes.
#[derive(Clone)]
pub enum Backing {
    /// Bytes held in host memory. Fully readable and writable.
    Owned(Vec<u8>),
    /// Deterministic generated content (read-only). A segment of any
    /// length costs O(1) memory; byte `i` is a pure function of
    /// `(seed, i)`. Used to stand in for huge model tensors.
    Synthetic {
        /// Content seed; two segments with the same seed have identical
        /// bytes.
        seed: u64,
    },
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backing::Owned(v) => f.debug_tuple("Owned").field(&v.len()).finish(),
            Backing::Synthetic { seed } => f.debug_struct("Synthetic").field("seed", seed).finish(),
        }
    }
}

/// A contiguous byte range with explicit bounds checking.
///
/// # Examples
///
/// ```
/// use portus_mem::MemorySegment;
///
/// let mut seg = MemorySegment::zeroed(16);
/// seg.write_at(4, &[1, 2, 3]).unwrap();
/// let mut out = [0u8; 3];
/// seg.read_at(4, &mut out).unwrap();
/// assert_eq!(out, [1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySegment {
    len: u64,
    backing: Backing,
}

impl MemorySegment {
    /// A zero-filled owned segment of `len` bytes.
    pub fn zeroed(len: u64) -> Self {
        MemorySegment {
            len,
            backing: Backing::Owned(vec![0; len as usize]),
        }
    }

    /// An owned segment taking ownership of `bytes`.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemorySegment {
            len: bytes.len() as u64,
            backing: Backing::Owned(bytes),
        }
    }

    /// A synthetic (generated, read-only) segment of `len` bytes seeded
    /// with `seed`.
    pub fn synthetic(len: u64, seed: u64) -> Self {
        MemorySegment {
            len,
            backing: Backing::Synthetic { seed },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the segment holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when writes are allowed (owned backing).
    pub fn is_writable(&self) -> bool {
        matches!(self.backing, Backing::Owned(_))
    }

    fn check_range(&self, offset: u64, len: u64) -> MemResult<()> {
        let end = offset.checked_add(len).ok_or(MemError::OutOfBounds {
            offset,
            len,
            size: self.len,
        })?;
        if end > self.len {
            return Err(MemError::OutOfBounds {
                offset,
                len,
                size: self.len,
            });
        }
        Ok(())
    }

    /// Copies `out.len()` bytes starting at `offset` into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the segment.
    pub fn read_at(&self, offset: u64, out: &mut [u8]) -> MemResult<()> {
        self.check_range(offset, out.len() as u64)?;
        match &self.backing {
            Backing::Owned(v) => {
                out.copy_from_slice(&v[offset as usize..offset as usize + out.len()]);
            }
            Backing::Synthetic { seed } => {
                for (i, b) in out.iter_mut().enumerate() {
                    let abs = offset + i as u64;
                    *b = synthetic_block(*seed, abs / 8)[(abs % 8) as usize];
                }
            }
        }
        Ok(())
    }

    /// Writes `data` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the segment
    /// and [`MemError::NotWritable`] for synthetic backings.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> MemResult<()> {
        self.check_range(offset, data.len() as u64)?;
        match &mut self.backing {
            Backing::Owned(v) => {
                v[offset as usize..offset as usize + data.len()].copy_from_slice(data);
                Ok(())
            }
            Backing::Synthetic { .. } => Err(MemError::NotWritable),
        }
    }

    /// FNV-1a checksum over the whole content (synthetic content is
    /// generated on the fly). Streaming, so it works for any length.
    pub fn checksum(&self) -> u64 {
        self.checksum_range(0, self.len)
            .expect("full range is always in bounds")
    }

    /// FNV-1a checksum over `[offset, offset+len)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range exceeds the segment.
    pub fn checksum_range(&self, offset: u64, len: u64) -> MemResult<u64> {
        self.check_range(offset, len)?;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut buf = [0u8; 4096];
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk = ((end - pos) as usize).min(buf.len());
            self.read_at(pos, &mut buf[..chunk])?;
            for &b in &buf[..chunk] {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            pos += chunk as u64;
        }
        Ok(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_reads_zero() {
        let seg = MemorySegment::zeroed(8);
        let mut out = [1u8; 8];
        seg.read_at(0, &mut out).unwrap();
        assert_eq!(out, [0u8; 8]);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut seg = MemorySegment::zeroed(32);
        seg.write_at(10, b"hello").unwrap();
        let mut out = [0u8; 5];
        seg.read_at(10, &mut out).unwrap();
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut seg = MemorySegment::zeroed(4);
        let mut out = [0u8; 2];
        assert!(matches!(
            seg.read_at(3, &mut out),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(seg.write_at(u64::MAX, &[0]).is_err());
    }

    #[test]
    fn synthetic_is_deterministic_and_offset_stable() {
        let seg = MemorySegment::synthetic(1024, 42);
        let mut all = vec![0u8; 1024];
        seg.read_at(0, &mut all).unwrap();
        // Reading a sub-range must see the same bytes as the full read.
        let mut part = vec![0u8; 100];
        seg.read_at(333, &mut part).unwrap();
        assert_eq!(&part[..], &all[333..433]);
        // Same seed, same content.
        let seg2 = MemorySegment::synthetic(1024, 42);
        assert_eq!(seg.checksum(), seg2.checksum());
        // Different seed, different content.
        let seg3 = MemorySegment::synthetic(1024, 43);
        assert_ne!(seg.checksum(), seg3.checksum());
    }

    #[test]
    fn synthetic_rejects_writes() {
        let mut seg = MemorySegment::synthetic(16, 7);
        assert!(matches!(seg.write_at(0, &[1]), Err(MemError::NotWritable)));
        assert!(!seg.is_writable());
    }

    #[test]
    fn checksum_matches_after_copy() {
        let src = MemorySegment::synthetic(4096 + 17, 99);
        let mut copy = vec![0u8; src.len() as usize];
        src.read_at(0, &mut copy).unwrap();
        let owned = MemorySegment::from_bytes(copy);
        assert_eq!(src.checksum(), owned.checksum());
    }

    #[test]
    fn checksum_range_differs_from_full() {
        let seg = MemorySegment::synthetic(256, 5);
        let full = seg.checksum();
        let part = seg.checksum_range(0, 128).unwrap();
        assert_ne!(full, part);
        assert!(seg.checksum_range(250, 10).is_err());
    }

    #[test]
    fn empty_segment() {
        let seg = MemorySegment::zeroed(0);
        assert!(seg.is_empty());
        let mut out = [];
        seg.read_at(0, &mut out).unwrap();
    }
}
