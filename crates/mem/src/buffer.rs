//! Shared, device-tagged buffers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use portus_sim::MemoryKind;

use crate::{MemResult, MemorySegment};

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// A unique identifier for a [`Buffer`] across all devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u64);

/// A reference-counted, thread-safe buffer living in a specific kind of
/// memory (host DRAM or GPU HBM).
///
/// Buffers are the unit of RDMA memory registration: the RDMA layer holds
/// an `Arc<Buffer>` and reads/writes it on behalf of remote peers. The
/// [`MemoryKind`] tag is what lets the cost model apply the GPU BAR read
/// cap only where the real hardware would.
#[derive(Debug)]
pub struct Buffer {
    id: BufferId,
    kind: MemoryKind,
    segment: RwLock<MemorySegment>,
    len: u64,
}

impl Buffer {
    /// Wraps `segment` as a buffer of `kind` memory.
    pub fn new(kind: MemoryKind, segment: MemorySegment) -> Arc<Buffer> {
        Arc::new(Buffer {
            id: BufferId(NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed)),
            kind,
            len: segment.len(),
            segment: RwLock::new(segment),
        })
    }

    /// The buffer's process-unique id.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Which memory this buffer lives in.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the buffer holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads `out.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates bounds errors from the underlying segment.
    pub fn read_at(&self, offset: u64, out: &mut [u8]) -> MemResult<()> {
        self.segment.read().read_at(offset, out)
    }

    /// Writes `data` at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates bounds/writability errors from the underlying segment.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> MemResult<()> {
        self.segment.write().write_at(offset, data)
    }

    /// Checksum of the full contents.
    pub fn checksum(&self) -> u64 {
        self.segment.read().checksum()
    }

    /// Checksum of a sub-range.
    ///
    /// # Errors
    ///
    /// Propagates bounds errors from the underlying segment.
    pub fn checksum_range(&self, offset: u64, len: u64) -> MemResult<u64> {
        self.segment.read().checksum_range(offset, len)
    }

    /// Copies the full contents into a fresh `Vec`. Intended for tests
    /// and small buffers.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len as usize];
        self.read_at(0, &mut out).expect("full range in bounds");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(1));
        let b = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(1));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(4096));
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let buf = Arc::clone(&buf);
                s.spawn(move || {
                    let base = t as u64 * 1024;
                    buf.write_at(base, &[t; 1024]).unwrap();
                });
            }
        });
        for t in 0..4u8 {
            let mut out = [0u8; 1024];
            buf.read_at(t as u64 * 1024, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == t));
        }
    }

    #[test]
    fn kind_is_preserved() {
        let g = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(64, 1));
        assert_eq!(g.kind(), MemoryKind::GpuHbm);
        assert_eq!(g.len(), 64);
    }
}
