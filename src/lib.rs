//! Umbrella crate for the Portus reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the integration
//! tests in `tests/` and the runnable programs in `examples/` can pull
//! the whole system from a single dependency.

pub use portus;
pub use portus_cluster;
pub use portus_dnn;
pub use portus_format;
pub use portus_mem;
pub use portus_pmem;
pub use portus_rdma;
pub use portus_sim;
pub use portus_storage;
pub use portus_train;
