//! Incremental checkpointing of an embedding-heavy recommender.
//!
//! Recommendation models (Check-N-Run's domain, which the paper
//! contrasts with) update only a few embedding shards per batch. The
//! delta extension exploits that: after the first full version, each
//! checkpoint pulls only the dirty shards over the fabric and carries
//! the rest over on the storage side.
//!
//! Run with: `cargo run --release --example recommender_delta`

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{DType, Materialization, ModelInstance, ModelSpec, TensorMeta};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn recommender_spec() -> ModelSpec {
    // 16 embedding shards of 4 MiB plus a small dense tower.
    let mut tensors: Vec<TensorMeta> = (0..16)
        .map(|i| TensorMeta::new(format!("embedding.shard{i}"), DType::F32, vec![16384, 64]))
        .collect();
    tensors.push(TensorMeta::new(
        "dense.fc1.weight",
        DType::F32,
        vec![512, 64],
    ));
    tensors.push(TensorMeta::new(
        "dense.fc2.weight",
        DType::F32,
        vec![64, 512],
    ));
    ModelSpec::new("dlrm-mini", tensors)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let spec = recommender_spec();
    let pmem = PmemDevice::new(
        ctx.clone(),
        PmemMode::DevDax,
        4 * spec.total_bytes() + (64 << 20),
    );
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default())?;
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    let mut model = ModelInstance::materialize(&spec, &gpu, 2026, Materialization::Owned)?;
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model)?;
    println!(
        "{}: {} tensors, {:.1} MiB total ({} embedding shards)",
        spec.name,
        spec.layer_count(),
        spec.total_bytes() as f64 / (1 << 20) as f64,
        16
    );

    // First version is necessarily full.
    model.train_step();
    model.take_dirty();
    let full = client.checkpoint(&spec.name)?;
    println!(
        "v1 (full): {} bytes over the fabric in {}",
        full.bytes, full.elapsed
    );

    // Ten sparse batches: each touches 2 embedding shards + the dense
    // tower (indices 16, 17).
    let mut fabric_bytes = 0u64;
    let mut carried = 0u64;
    for batch in 0..10usize {
        model.train_step_sparse(&[batch % 16, (batch + 7) % 16, 16, 17]);
        let dirty = model.take_dirty();
        let r = client.checkpoint_delta(&spec.name, &dirty)?;
        fabric_bytes += r.pulled_bytes;
        carried += r.copied_bytes;
        if batch < 3 {
            println!(
                "v{} (delta): pulled {} bytes, carried {} bytes in {}",
                r.version, r.pulled_bytes, r.copied_bytes, r.elapsed
            );
        }
    }
    println!(
        "10 delta checkpoints: {:.1} MiB over the fabric vs {:.1} MiB carried over \
         ({:.0}% network savings vs full checkpoints)",
        fabric_bytes as f64 / (1 << 20) as f64,
        carried as f64 / (1 << 20) as f64,
        100.0 * (1.0 - fabric_bytes as f64 / (10.0 * spec.total_bytes() as f64)),
    );

    // Every delta version is a complete snapshot: restore and verify.
    let want = model.model_checksum();
    model.train_step();
    let r = client.restore(&model)?;
    assert_eq!(model.model_checksum(), want);
    println!("restored v{} bit-for-bit", r.version);
    Ok(())
}
