//! Distributed large-model checkpointing (the §V-E scenario).
//!
//! Shards a GPT model across a Megatron-style (tensor × pipeline) grid;
//! every shard registers with the Portus daemon independently and
//! checkpoints concurrently — the multi-shard, multi-node workload that
//! makes traditional shared-file-system checkpointing slow. A scaled
//! GPT stands in for GPT-22.4B so the example runs in seconds with the
//! full real data plane; the full-size numbers come from
//! `cargo run --release -p portus-bench --bin fig14_gpt_scale`.
//!
//! Run with: `cargo run --release --example distributed_gpt`

use std::sync::Arc;

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{shard_model, zoo, Materialization, ModelInstance, ParallelConfig};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());

    // A scaled GPT (same layout as the 22.4B config, smaller hidden
    // size) across a 4 (tensor) x 2 (pipeline) grid = 8 GPUs on 2 nodes.
    let spec = zoo::gpt_with("gpt-mini", 512, 8, 8192);
    let parallel = ParallelConfig::grid(4, 2);
    let shards = shard_model(&spec, parallel);
    println!(
        "sharded {} ({:.1} MiB) into {} shards across {} GPUs",
        spec.name,
        spec.total_bytes() as f64 / (1 << 20) as f64,
        shards.len(),
        parallel.gpu_count()
    );

    // Storage node.
    let storage_node = NodeId(100);
    fabric.add_nic(storage_node);
    let pmem = PmemDevice::new(
        ctx.clone(),
        PmemMode::DevDax,
        4 * spec.total_bytes() + (1 << 28),
    );
    let daemon = PortusDaemon::start(&fabric, storage_node, pmem, DaemonConfig::default())?;

    // Two compute nodes, four GPUs each; each shard gets a GPU and its
    // own client connection (one worker thread per connection on the
    // daemon — the ThreadPool of the paper).
    let mut clients = Vec::new();
    for (rank, shard) in shards.iter().enumerate() {
        let node = NodeId((rank / 4) as u32); // 4 GPUs per node
        let nic = match fabric.nic(node) {
            Ok(nic) => nic,
            Err(_) => fabric.add_nic(node),
        };
        let gpu = GpuDevice::new(ctx.clone(), rank as u32, 8 << 30);
        let model =
            ModelInstance::materialize(&shard.spec, &gpu, rank as u64, Materialization::Owned)?;
        let client = PortusClient::connect(&daemon, nic);
        client.register_model(&model)?;
        clients.push((client, model, Arc::clone(&gpu)));
    }
    println!("registered {} shards with the daemon", clients.len());

    // All shards checkpoint concurrently (async issue, then wait) —
    // "highly concurrent checkpointing requests with complex checkpoint
    // structures".
    let t0 = ctx.clock.now();
    let pending: Vec<_> = clients
        .iter()
        .map(|(client, model, _)| {
            let name = model.spec().name.clone();
            let p = client.checkpoint_async(&name).expect("issue checkpoint");
            (client, name, p)
        })
        .collect();
    let mut total_bytes = 0;
    for (client, name, p) in pending {
        let report = client.wait_checkpoint(&name, p)?;
        total_bytes += report.bytes;
        println!("  shard {name}: v{} in {}", report.version, report.elapsed);
    }
    let elapsed = ctx.clock.now().saturating_since(t0);
    println!(
        "all {} shards checkpointed: {} bytes total in {} (virtual)",
        clients.len(),
        total_bytes,
        elapsed
    );

    // Restore every shard and verify bit-for-bit.
    for (client, model, _) in &clients {
        let before = model.model_checksum();
        client.restore(model)?;
        assert_eq!(model.model_checksum(), before);
    }
    println!("all shards restored and verified");

    // The daemon's view: one MIndex per shard, each with 2 slots.
    let models = daemon.summaries()?;
    assert_eq!(models.len(), shards.len());
    println!("daemon holds {} model shards on PMem", models.len());
    Ok(())
}
