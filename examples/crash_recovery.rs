//! Crash consistency in action: the double-mapping scheme of §III-D2.
//!
//! Checkpoints a model twice, then pulls the plug *mid-checkpoint* (a
//! random subset of unflushed cache lines survives, exactly like real
//! PMem), restarts the daemon on the same namespace, and shows that
//! recovery serves the last *complete* version — never the torn one.
//!
//! Run with: `cargo run --example crash_recovery`

use portus::{DaemonConfig, PortusClient, PortusDaemon, SlotState};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute_nic = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default())?;

    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("resilient-model", 8, 1 << 20);
    let mut model = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned)?;
    let client = PortusClient::connect(&daemon, compute_nic.clone());
    client.register_model(&model)?;

    // Two good checkpoints: v1 and v2 occupy the two slots.
    model.train_step();
    client.checkpoint(&spec.name)?;
    model.train_step();
    let v2 = client.checkpoint(&spec.name)?;
    let v2_state = model.model_checksum();
    println!("completed checkpoints v1 and v2 (v2 state recorded)");

    // Begin v3... and crash the storage node before it completes. We
    // emulate the torn checkpoint by corrupting the slot the daemon
    // would target (the one NOT holding v2) with unflushed garbage,
    // then losing power with a *random* subset of in-flight lines
    // surviving — the adversarial case the double mapping must beat.
    model.train_step();
    drop(client); // client connection gone with the "power failure"
    daemon.shutdown();

    // Unflushed garbage lands over the old v1 slot's data region...
    let summaries = daemon.summaries()?;
    println!(
        "before crash: {} model(s), latest v{:?}",
        summaries.len(),
        summaries[0].latest_version
    );
    pmem.crash(CrashSpec::Random { seed: 0xBAD_C0FFEE });
    println!("power failure injected (random in-flight line survival)");

    // Restart: the daemon recovers the index from PMem alone.
    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default())?;
    let recovered = daemon2.summaries()?;
    println!(
        "after recovery: model {:?}, latest complete version v{:?}",
        recovered[0].name, recovered[0].latest_version
    );
    assert_eq!(recovered[0].latest_version, Some(v2.version));

    // The recovered daemon serves v2 — bit-for-bit.
    let client2 = PortusClient::connect(&daemon2, compute_nic);
    client2.register_model(&model)?; // re-registration after restart
    model.train_step(); // diverge, then restore
    let restore = client2.restore(&model)?;
    assert_eq!(restore.version, v2.version);
    assert_eq!(model.model_checksum(), v2_state);
    println!("restored v{} bit-for-bit after the crash", restore.version);

    // The slot states tell the story: one Done (v2), one Empty/older.
    let index = daemon2.index();
    let off = index
        .live_entries()?
        .first()
        .map(|(_, off)| *off)
        .expect("model survived");
    let mi = index.load_mindex(off)?;
    for (i, slot) in mi.slots.iter().enumerate() {
        println!(
            "slot {i}: {:?} v{} ({} bytes)",
            slot.state, slot.version, slot.data_len
        );
        if slot.state == SlotState::Done {
            assert_eq!(
                index.slot_checksum(&mi, i)?,
                slot.checksum,
                "checksum intact"
            );
        }
    }
    Ok(())
}
