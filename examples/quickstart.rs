//! Quickstart: the smallest complete Portus deployment.
//!
//! Brings up a two-node fabric (one compute node with a GPU, one
//! storage node with devdax PMem), trains a toy model, checkpoints it
//! with one `DO_CHECKPOINT`, diverges, and restores — verifying the
//! restored bytes match the checkpointed ones exactly.
//!
//! Run with: `cargo run --example quickstart`

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One virtual timeline + calibrated cost model shared by everything.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute_nic = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));

    // Storage node: a 256 MiB devdax PMem namespace, formatted by the
    // daemon on startup.
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default())?;

    // Compute node: a 16-layer model on the simulated GPU.
    let gpu = GpuDevice::new(ctx.clone(), 0, 4 << 30);
    let spec = test_spec("quickstart-mlp", 16, 1 << 20); // 16 MiB
    let mut model = ModelInstance::materialize(&spec, &gpu, 2024, Materialization::Owned)?;

    // Register once: tensors become RDMA memory regions, the daemon
    // pre-builds the checkpoint structure on PMem.
    let client = PortusClient::connect(&daemon, compute_nic);
    client.register_model(&model)?;
    println!(
        "registered {} ({} tensors, {} MiB)",
        spec.name,
        spec.layer_count(),
        spec.total_bytes() >> 20
    );

    // Train a little, checkpoint, train more, crash-and-restore.
    for _ in 0..3 {
        model.train_step();
    }
    let saved_state = model.model_checksum();
    let report = client.checkpoint(&spec.name)?;
    println!(
        "checkpoint v{} of {} bytes took {} (virtual) — zero copies through host DRAM",
        report.version, report.bytes, report.elapsed
    );

    for _ in 0..5 {
        model.train_step(); // work that will be "lost" in the crash
    }
    assert_ne!(model.model_checksum(), saved_state);

    let restore = client.restore(&model)?;
    println!(
        "restored v{} in {} (virtual) — one-sided writes into GPU memory",
        restore.version, restore.elapsed
    );
    assert_eq!(
        model.model_checksum(),
        saved_state,
        "bytes must match exactly"
    );
    println!("restored state verified bit-for-bit");

    // What's on the device?
    for m in client.list_models()? {
        println!(
            "on PMem: {} — {} layers, {} bytes, latest v{:?}, {} valid version(s)",
            m.name, m.layers, m.bytes, m.latest_version, m.valid_versions
        );
    }
    Ok(())
}
