//! A tour of `portusctl` (§IV-b): checkpoint two models, image the PMem
//! device to a file (as if it were `/dev/dax0.0`), then `view` the
//! image and `dump` a checkpoint into the portable container format —
//! verifying the dumped tensors match the GPU originals.
//!
//! Run with: `cargo run --example portusctl_tour`

use portus::{portusctl, DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_format::read_checkpoint;
use portus_mem::GpuDevice;
use portus_pmem::{save_image, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute_nic = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default())?;

    // Checkpoint two different models (a multi-tenant device).
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let client = PortusClient::connect(&daemon, compute_nic);
    let mut originals = Vec::new();
    for (name, layers) in [("bert-mini", 12), ("vit-mini", 8)] {
        let spec = test_spec(name, layers, 256 * 1024);
        let mut model = ModelInstance::materialize(&spec, &gpu, 5, Materialization::Owned)?;
        client.register_model(&model)?;
        model.train_step();
        client.checkpoint(name)?;
        client.mark_complete(name)?; // training done: shareable
        originals.push(model);
    }

    // Image the device (durable content only, like pulling the DIMMs).
    let dir = std::env::temp_dir().join("portusctl-tour");
    std::fs::create_dir_all(&dir)?;
    let image = dir.join("pmem.img");
    save_image(&pmem, &image)?;
    println!("imaged PMem device to {}", image.display());

    // portusctl view IMAGE
    let models = portusctl::view(&image)?;
    print!("{}", portusctl::render_view(&models));
    assert_eq!(models.len(), 2);

    // portusctl dump IMAGE MODEL FILE
    let out = dir.join("bert-mini.ckpt");
    let report = portusctl::dump(&image, "bert-mini", &out)?;
    println!(
        "dumped {} v{} ({} tensors, {} bytes) to {}",
        report.model,
        report.version,
        report.tensors,
        report.bytes,
        out.display()
    );

    // The dump is a plain portable container: verify against the GPU.
    let file = std::fs::read(&out)?;
    let decoded = read_checkpoint(&file[..])?;
    assert_eq!(decoded.model_name, "bert-mini");
    let original = &originals[0];
    for ((meta, payload), tensor) in decoded.tensors.iter().zip(original.tensors()) {
        assert_eq!(meta.name, tensor.meta.name);
        assert_eq!(
            payload,
            &tensor.buffer.to_vec(),
            "tensor {} differs",
            meta.name
        );
    }
    println!("dumped container verified against the live GPU tensors");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
