//! Asynchronous fine-grained checkpointing (§III-E, Fig. 8/9d).
//!
//! Two parts:
//!
//! 1. **Protocol, with real bytes** — a training loop issues
//!    `DO_CHECKPOINT` every few iterations *without waiting*; the daemon
//!    pulls tensors in its worker thread while the loop keeps going, and
//!    the loop synchronizes only at the parameter-update phase
//!    (`guard_update`), because parameters must not change under an
//!    active pull. Every completed version is then restored and
//!    verified bit-for-bit.
//!
//! 2. **Timing, on the policy harness** — per-iteration overlap
//!    accounting lives in `portus-cluster` (one virtual timeline cannot
//!    overlap two real threads); the same workload is priced under the
//!    synchronous and asynchronous policies to show the hidden latency.
//!
//! Run with: `cargo run --example async_training`

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_cluster::{run_training, JobShape, Policy, TrainingConfig};
use portus_dnn::{test_spec, IterationProfile, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{CostModel, SimContext, SimDuration};

const ITERS: u64 = 40;
const EVERY: u64 = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- part 1: the asynchronous protocol, real data plane ----
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute_nic = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default())?;
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("async-model", 16, 2 << 20); // 32 MiB
    let mut model = ModelInstance::materialize(&spec, &gpu, 11, Materialization::Owned)?;
    let client = PortusClient::connect(&daemon, compute_nic);
    client.register_model(&model)?;

    let mut completed = Vec::new();
    for i in 1..=ITERS {
        // F + B run while any in-flight pull proceeds in the daemon's
        // worker thread (parameters are read-only in these phases).
        std::thread::yield_now();
        // Fig. 8 barrier: the update below must not race the pull.
        if let Some(report) = client.guard_update(&spec.name)? {
            completed.push((report.version, model.model_checksum()));
        }
        model.train_step(); // U — only reached with no pull in flight
        if i % EVERY == 0 {
            client.checkpoint_async(&spec.name)?; // returns immediately
        }
    }
    if let Some(report) = client.guard_update(&spec.name)? {
        completed.push((report.version, model.model_checksum()));
    }
    println!(
        "issued {} asynchronous checkpoints; {} completed under compute",
        ITERS / EVERY,
        completed.len()
    );

    // The latest completed version restores bit-for-bit.
    let (latest_version, state_at_ckpt) = *completed.last().expect("checkpoints completed");
    model.train_step(); // diverge
    let restore = client.restore(&model)?;
    assert_eq!(restore.version, latest_version);
    assert_eq!(model.model_checksum(), state_at_ckpt);
    println!("restored v{latest_version} and verified bit-for-bit");

    // ---- part 2: what asynchrony buys, on the policy harness ----
    let m = CostModel::icdcs24();
    let cfg = |policy| TrainingConfig {
        job: JobShape::single(spec.total_bytes(), spec.layer_count() as u64),
        profile: IterationProfile::from_total(SimDuration::from_millis(100)),
        policy,
    };
    let sync = run_training(
        &m,
        &cfg(Policy::PortusSync {
            every: EVERY as u32,
        }),
        ITERS,
    );
    let asynch = run_training(
        &m,
        &cfg(Policy::PortusAsync {
            every: EVERY as u32,
        }),
        ITERS,
    );
    println!(
        "policy harness over {ITERS} iterations: sync {} vs async {}",
        sync.elapsed, asynch.elapsed
    );
    assert!(asynch.elapsed <= sync.elapsed);
    println!(
        "async hides {:.1}% of the checkpoint stall ({} -> {})",
        100.0 * (sync.checkpoint_stall - asynch.checkpoint_stall).as_secs_f64()
            / sync.checkpoint_stall.as_secs_f64().max(1e-12),
        sync.checkpoint_stall,
        asynch.checkpoint_stall
    );
    Ok(())
}
